(* The concurrent solve service: queue semantics, cache hits serving
   bit-identical verified models, in-flight deduplication, deadline
   enforcement, admission control, and a multi-domain submit/await
   fuzz with metrics reconciliation. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config ?(workers = 2) ?(queue = 64) ?(cache = 64) ?(warm = 64)
    ?(sessions = 64) ?session_ttl ?cube ?dispatch () =
  {
    Server.workers;
    queue_capacity = queue;
    cache_capacity = cache;
    warm_capacity = warm;
    mode = Server.Direct;
    limits = Sat.Solver.no_limits;
    default_deadline = None;
    session_capacity = sessions;
    session_ttl;
    cube;
    dispatch;
  }

let with_engine ?workers ?queue ?cache ?warm ?sessions ?session_ttl ?cube
    ?dispatch f =
  let e =
    Server.create
      ~config:
        (config ?workers ?queue ?cache ?warm ?sessions ?session_ttl ?cube
           ?dispatch ())
      ()
  in
  Fun.protect ~finally:(fun () -> Server.shutdown e) (fun () -> f e)

let submit_ok e ?deadline ?priority f =
  match Server.submit e ?deadline ?priority f with
  | Ok t -> t
  | Error r -> Alcotest.failf "submit rejected: %s" r

let brute_force_sat f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 14);
  let rec try_assignment m =
    m < 1 lsl n
    && (Cnf.Formula.eval f (Array.init n (fun i -> m land (1 lsl i) <> 0))
        || try_assignment (m + 1))
  in
  try_assignment 0

let random_formula rng =
  let nvars = 2 + Aig.Rng.int rng 11 in
  let nclauses = 1 + Aig.Rng.int rng (4 * nvars) in
  Cnf.Formula.create ~num_vars:nvars
    (List.init nclauses (fun _ ->
         Array.init
           (1 + Aig.Rng.int rng 4)
           (fun _ ->
             let v = 1 + Aig.Rng.int rng nvars in
             if Aig.Rng.bool rng then v else -v)))

let php n = Workloads.Satcomp.pigeonhole ~pigeons:n ~holes:(n - 1)

(* --- basics ---------------------------------------------------------- *)

let test_solve_basics () =
  with_engine (fun e ->
      let sat = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |] ] in
      (match Server.solve e sat with
       | Ok { Server.verdict = Server.Sat m; source = Server.Solved; _ } ->
         check_bool "model satisfies" true (Cnf.Formula.eval sat m)
       | Ok _ -> Alcotest.fail "expected a fresh SAT answer"
       | Error r -> Alcotest.failf "rejected: %s" r);
      match Server.solve e (php 5) with
      | Ok { Server.verdict = Server.Unsat; _ } -> ()
      | Ok _ -> Alcotest.fail "php(5,4) must be UNSAT"
      | Error r -> Alcotest.failf "rejected: %s" r)

let test_cache_hit_bit_identical () =
  with_engine (fun e ->
      let f =
        Cnf.Formula.create ~num_vars:4
          [ [| 1; 2 |]; [| -1; 3 |]; [| -3; 4 |]; [| 2; -4 |] ]
      in
      let cold =
        match Server.solve e f with
        | Ok a -> a
        | Error r -> Alcotest.failf "cold solve rejected: %s" r
      in
      let m0 =
        match cold.Server.verdict with
        | Server.Sat m -> m
        | _ -> Alcotest.fail "formula is satisfiable"
      in
      (* Clause order and duplicate literals differ; the canonical
         fingerprint matches, so this must answer from the cache with
         the very same model. *)
      let g =
        Cnf.Formula.create ~num_vars:4
          [ [| 2; -4; 2 |]; [| 4; -3 |]; [| 2; 1 |]; [| 3; -1 |] ]
      in
      match Server.solve e g with
      | Ok { Server.verdict = Server.Sat m; source = Server.Cache_hit; _ } ->
        Alcotest.(check (array bool)) "bit-identical model" m0 m;
        check_bool "valid for the renamed duplicate" true
          (Cnf.Formula.eval g m);
        check_int "one cache hit" 1 (Server.stats e).Server.Metrics.cache_hits
      | Ok a ->
        Alcotest.failf "expected cache hit, got source=%s"
          (match a.Server.source with
           | Server.Solved -> "solved"
           | Server.Cache_hit -> "cache"
           | Server.Dedup_join -> "join")
      | Error r -> Alcotest.failf "rejected: %s" r)

let test_dedup_solves_once () =
  with_engine ~workers:1 (fun e ->
      (* A busy worker keeps [f] queued, so the second submit of the
         same formula must attach to the first job instead of creating
         a new one. *)
      let blocker = submit_ok e (php 9) in
      let f = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -2; 3 |] ] in
      let t1 = submit_ok e f in
      let t2 = submit_ok e f in
      let a1 = Server.await e t1 in
      let a2 = Server.await e t2 in
      ignore (Server.await e blocker);
      let model = function
        | { Server.verdict = Server.Sat m; _ } -> m
        | _ -> Alcotest.fail "satisfiable formula"
      in
      Alcotest.(check (array bool)) "same answer" (model a1) (model a2);
      check_bool "one of the two joined" true
        (a1.Server.source = Server.Dedup_join
         || a2.Server.source = Server.Dedup_join);
      let s = Server.stats e in
      check_int "dedup recorded" 1 s.Server.Metrics.dedup_joins;
      (* blocker + f: exactly two jobs actually entered the queue. *)
      check_int "two jobs created" 2 s.Server.Metrics.submitted)

let test_deadline_timeout () =
  with_engine ~workers:1 (fun e ->
      let t0 = Unix.gettimeofday () in
      match Server.solve e ~deadline:0.15 (php 11) with
      | Ok { Server.verdict = Server.Timeout; _ } ->
        let took = Unix.gettimeofday () -. t0 in
        check_bool
          (Printf.sprintf "answered near the deadline (%.2fs)" took)
          true (took < 5.0);
        check_int "timeout counted" 1 (Server.stats e).Server.Metrics.timeouts
      | Ok _ -> Alcotest.fail "php(11,10) cannot finish in 150ms here"
      | Error r -> Alcotest.failf "rejected: %s" r)

let test_queue_full_rejection () =
  with_engine ~workers:1 ~queue:2 (fun e ->
      let _blocker = submit_ok e (php 11) in
      (* Let the single worker pop the blocker so the queue is empty
         but the worker is busy for a long time. *)
      Unix.sleepf 0.05;
      let _q1 = submit_ok e (php 12) in
      let _q2 = submit_ok e (php 13) in
      (match Server.submit e (php 14) with
       | Error reason ->
         check_bool "reason mentions the queue" true
           (String.length reason > 0)
       | Ok _ -> Alcotest.fail "queue of 2 accepted a third waiter");
      let s = Server.stats e in
      check_int "rejection counted" 1 s.Server.Metrics.rejected;
      check_int "queue depth at capacity" 2 s.Server.Metrics.queue_depth)
  (* shutdown interrupts the running php(11,10) and fails the queued
     jobs; with_engine's finally exercises that path. *)

let test_shutdown_idempotent () =
  let e = Server.create ~config:(config ()) () in
  let f = Cnf.Formula.create ~num_vars:2 [ [| 1 |]; [| 2 |] ] in
  (match Server.solve e f with
   | Ok { Server.verdict = Server.Sat _; _ } -> ()
   | _ -> Alcotest.fail "simple solve failed");
  Server.shutdown e;
  Server.shutdown e;
  match Server.submit e f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit accepted after shutdown"

let test_concurrent_fuzz () =
  with_engine ~workers:3 ~queue:256 (fun e ->
      let n_domains = 4 and per_domain = 20 in
      let failures = Atomic.make 0 in
      let complain fmt =
        Printf.ksprintf
          (fun msg ->
            Atomic.incr failures;
            print_endline ("fuzz: " ^ msg))
          fmt
      in
      let worker d () =
        (* Overlapping seed ranges across domains provoke dedup joins
           and cache hits alongside fresh solves. *)
        for i = 0 to per_domain - 1 do
          let rng = Aig.Rng.create (1000 + ((d + i) mod 17)) in
          let f = random_formula rng in
          match Server.solve e f with
          | Error r -> complain "domain %d case %d rejected: %s" d i r
          | Ok a -> (
            match a.Server.verdict with
            | Server.Sat m ->
              if not (Cnf.Formula.eval f m) then
                complain "domain %d case %d: bad model" d i
            | Server.Unsat ->
              if brute_force_sat f then
                complain "domain %d case %d: wrong UNSAT" d i
            | Server.Timeout | Server.Failed _ ->
              complain "domain %d case %d: unexpected non-answer" d i)
        done
      in
      let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join ds;
      check_int "no failures" 0 (Atomic.get failures);
      let s = Server.stats e in
      check_int "every request accounted"
        (n_domains * per_domain)
        (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
        + s.Server.Metrics.warm_hits + s.Server.Metrics.dedup_joins);
      check_int "every job completed"
        (s.Server.Metrics.submitted + s.Server.Metrics.warm_hits)
        s.Server.Metrics.completed;
      check_int "all answers decisive" s.Server.Metrics.completed
        (s.Server.Metrics.solved_sat + s.Server.Metrics.solved_unsat);
      check_bool "cache or dedup observed" true
        (s.Server.Metrics.cache_hits + s.Server.Metrics.dedup_joins > 0))

(* --- sessions -------------------------------------------------------- *)

let session_ok = function
  | Ok (a : Server.Session.answer) -> a
  | Error r -> Alcotest.failf "session op rejected: %s" r

let open_ok e =
  match Server.open_session e with
  | Ok sid -> sid
  | Error r -> Alcotest.failf "open_session rejected: %s" r

let outcome_name = function
  | Server.Session.Ok_done -> "OK"
  | Server.Session.Sat _ -> "SAT"
  | Server.Session.Unsat _ -> "UNSAT"
  | Server.Session.Timeout -> "TIMEOUT"
  | Server.Session.Evicted -> "EVICTED"
  | Server.Session.Failed m -> "FAILED " ^ m

(* Pad/clamp a session model (client variables in first-use order) to
   a formula's declared width; unconstrained variables are free. *)
let fit_model ~num_vars m =
  Array.init num_vars (fun i -> i < Array.length m && m.(i))

(* A Close answer resolves before the worker retires the session from
   the engine table, so lifecycle counters may trail the awaited
   answer by a scheduler beat — poll briefly before asserting. *)
let await_counter name get expected =
  let tries = ref 300 in
  while get () <> expected && !tries > 0 do
    decr tries;
    Unix.sleepf 0.005
  done;
  check_int name expected (get ())

let test_session_basics () =
  with_engine (fun e ->
      let sid = open_ok e in
      (match
         (session_ok (Server.session_add e sid [ [| 1; 2 |]; [| -1; 3 |] ]))
           .Server.Session.outcome
       with
       | Server.Session.Ok_done -> ()
       | o -> Alcotest.failf "ADD answered %s" (outcome_name o));
      (match
         (session_ok (Server.solve_session e sid)).Server.Session.outcome
       with
       | Server.Session.Sat m ->
         check_int "model covers the client variables" 3 (Array.length m);
         check_bool "satisfies 1|2" true (m.(0) || m.(1));
         check_bool "satisfies -1|3" true ((not m.(0)) || m.(2))
       | o -> Alcotest.failf "SOLVE answered %s" (outcome_name o));
      ignore (session_ok (Server.session_add e sid [ [| -2 |] ]));
      (* (1|2)(-1|3)(-2) under assumption -1: 2 is forced, conflict —
         the failed-assumption core must name client literals only. *)
      (match
         (session_ok (Server.solve_session e ~assumptions:[| -1; -3 |] sid))
           .Server.Session.outcome
       with
       | Server.Session.Unsat core ->
         check_bool "core nonempty" true (Array.length core >= 1);
         check_bool "core drawn from the assumptions" true
           (Array.for_all (fun l -> l = -1 || l = -3) core)
       | o -> Alcotest.failf "assumed SOLVE answered %s" (outcome_name o));
      (* IPASIR: assumptions cleared once the solve answered. *)
      (match
         (session_ok (Server.solve_session e sid)).Server.Session.outcome
       with
       | Server.Session.Sat _ -> ()
       | o -> Alcotest.failf "post-assumption SOLVE answered %s"
                (outcome_name o));
      (match
         (session_ok (Server.close_session e sid)).Server.Session.outcome
       with
       | Server.Session.Ok_done -> ()
       | o -> Alcotest.failf "CLOSE answered %s" (outcome_name o));
      (match
         (session_ok (Server.session_push e sid)).Server.Session.outcome
       with
       | Server.Session.Failed _ -> ()
       | o -> Alcotest.failf "op on a closed session answered %s"
                (outcome_name o));
      check_int "opens counted" 1
        (Server.stats e).Server.Metrics.sessions_opened;
      await_counter "closes counted"
        (fun () -> (Server.stats e).Server.Metrics.sessions_closed)
        1;
      (* add, solve, add, (assume + solve), solve, close, push: 8 ops *)
      check_int "session ops counted" 8
        (Server.stats e).Server.Metrics.session_ops;
      check_int "session solves counted" 3
        (Server.stats e).Server.Metrics.session_solves)

let test_session_push_pop () =
  with_engine (fun e ->
      let sid = open_ok e in
      ignore (session_ok (Server.session_add e sid [ [| 1; 2 |] ]));
      ignore (session_ok (Server.session_push e sid));
      ignore (session_ok (Server.session_add e sid [ [| -1 |]; [| -2 |] ]));
      (match
         (session_ok (Server.solve_session e sid)).Server.Session.outcome
       with
       | Server.Session.Unsat core ->
         (* The conflict is carried by the frame's activation literal,
            which is not client-visible: the reported core is empty. *)
         check_int "activation-only core filtered" 0 (Array.length core)
       | o -> Alcotest.failf "framed SOLVE answered %s" (outcome_name o));
      ignore (session_ok (Server.session_pop e sid));
      (match
         (session_ok (Server.solve_session e sid)).Server.Session.outcome
       with
       | Server.Session.Sat m ->
         check_bool "base clause satisfied" true (m.(0) || m.(1))
       | o -> Alcotest.failf "post-POP SOLVE answered %s" (outcome_name o));
      match (session_ok (Server.session_pop e sid)).Server.Session.outcome
      with
      | Server.Session.Failed _ -> ()
      | o -> Alcotest.failf "unmatched POP answered %s" (outcome_name o))

let test_session_eviction_lru () =
  with_engine ~sessions:2 (fun e ->
      let s0 = open_ok e in
      let s1 = open_ok e in
      ignore (session_ok (Server.session_add e s1 [ [| 1 |] ]));
      (* Table full, both idle: the third OPEN evicts s0 (LRU). *)
      let s2 = open_ok e in
      (match
         (session_ok (Server.session_push e s0)).Server.Session.outcome
       with
       | Server.Session.Evicted -> ()
       | o -> Alcotest.failf "op on the evicted session answered %s"
                (outcome_name o));
      (* The survivors still work. *)
      (match
         (session_ok (Server.solve_session e s1)).Server.Session.outcome
       with
       | Server.Session.Sat _ -> ()
       | o -> Alcotest.failf "s1 SOLVE answered %s" (outcome_name o));
      ignore (session_ok (Server.session_add e s2 [ [| -1 |] ]));
      let s = Server.stats e in
      check_int "one eviction" 1 s.Server.Metrics.sessions_evicted;
      check_int "two live sessions" 2 s.Server.Metrics.sessions_live)

let test_session_table_full_when_busy () =
  with_engine ~workers:1 ~sessions:1 (fun e ->
      let s0 = open_ok e in
      ignore
        (session_ok
           (Server.session_add e s0
              (Array.to_list (php 11).Cnf.Formula.clauses)));
      (* Queue a long solve without awaiting: the session is no longer
         idle, so it is not an eviction victim and OPEN must reject. *)
      (match
         Server.session_submit e s0
           (Server.Session.Solve { deadline = None })
       with
       | Ok _ -> ()
       | Error r -> Alcotest.failf "solve submit rejected: %s" r);
      (match Server.open_session e with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "OPEN found a victim in a busy table");
      check_int "the refusal is a rejection" 1
        (Server.stats e).Server.Metrics.rejected)
  (* with_engine's finally shuts down mid-solve: the interrupt path
     for a running session op. *)

let test_session_ttl_eviction () =
  with_engine ~session_ttl:0.05 (fun e ->
      let sid = open_ok e in
      Unix.sleepf 0.3;
      (match
         (session_ok (Server.session_add e sid [ [| 1 |] ]))
           .Server.Session.outcome
       with
       | Server.Session.Evicted -> ()
       | o -> Alcotest.failf "op after the TTL answered %s"
                (outcome_name o));
      let s = Server.stats e in
      check_int "TTL eviction counted" 1 s.Server.Metrics.sessions_evicted;
      check_int "no live sessions" 0 s.Server.Metrics.sessions_live)

let test_session_deadline_interrupt () =
  with_engine ~workers:1 (fun e ->
      let sid = open_ok e in
      ignore (session_ok (Server.session_push e sid));
      ignore
        (session_ok
           (Server.session_add e sid
              (Array.to_list (php 11).Cnf.Formula.clauses)));
      let t0 = Unix.gettimeofday () in
      (match
         (session_ok (Server.solve_session e ~deadline:0.15 sid))
           .Server.Session.outcome
       with
       | Server.Session.Timeout ->
         let took = Unix.gettimeofday () -. t0 in
         check_bool
           (Printf.sprintf "answered near the deadline (%.2fs)" took)
           true (took < 5.0)
       | o -> Alcotest.failf "php(11,10) in 150ms answered %s"
                (outcome_name o));
      (* The interrupted session stays usable: retire the frame and
         the remaining (empty) problem is satisfiable. *)
      ignore (session_ok (Server.session_pop e sid));
      match
        (session_ok (Server.solve_session e sid)).Server.Session.outcome
      with
      | Server.Session.Sat _ -> ()
      | o -> Alcotest.failf "post-interrupt SOLVE answered %s"
               (outcome_name o))

let test_bad_deadline_rejected () =
  with_engine (fun e ->
      let f = Cnf.Formula.create ~num_vars:1 [ [| 1 |] ] in
      let expect_bad = function
        | Error "bad-deadline" -> ()
        | Error r -> Alcotest.failf "expected bad-deadline, got %s" r
        | Ok _ -> Alcotest.fail "invalid deadline was accepted"
      in
      (match Server.submit e ~deadline:Float.nan f with
       | Ok _ -> Alcotest.fail "NaN deadline was accepted"
       | Error r -> Alcotest.(check string) "NaN rejected" "bad-deadline" r);
      (match Server.submit e ~deadline:(-0.5) f with
       | Ok _ -> Alcotest.fail "negative deadline was accepted"
       | Error r ->
         Alcotest.(check string) "negative rejected" "bad-deadline" r);
      let sid = open_ok e in
      expect_bad
        (Result.map (fun (_ : Server.Session.answer) -> ())
           (Server.solve_session e ~deadline:Float.nan sid));
      expect_bad
        (Result.map
           (fun (_ : Server.Session.ticket) -> ())
           (Server.submit_session_solve e ~deadline:Float.neg_infinity sid));
      check_int "all four rejections counted" 4
        (Server.stats e).Server.Metrics.rejected;
      (* A generous but valid deadline still solves. *)
      match Server.solve e ~deadline:5.0 f with
      | Ok { Server.verdict = Server.Sat _; _ } -> ()
      | _ -> Alcotest.fail "valid deadline must solve")

let test_model_line_clamps () =
  Alcotest.(check string) "clamps extra entries" "v 1 -2 3 0"
    (Server.Protocol.model_line ~num_vars:3
       [| true; false; true; true; false |]);
  Alcotest.(check string) "pads missing entries negative" "v 1 -2 -3 0"
    (Server.Protocol.model_line ~num_vars:3 [| true |]);
  Alcotest.(check string) "exact width unchanged" "v -1 2 0"
    (Server.Protocol.model_line ~num_vars:2 [| false; true |]);
  Alcotest.(check string) "no variables" "v 0"
    (Server.Protocol.model_line ~num_vars:0 [||])

let test_session_fuzz () =
  (* 4 domains × (one-shot + framed session round) against brute
     force, over a 3-session table so concurrent OPENs LRU-evict
     idle sessions out from under their owners (an owner that finds
     its session evicted reopens and carries on).  Every engine
     request is counted at the call site, so the reconciliation
     invariant (requests = submitted + cache_hits + warm_hits +
     dedup_joins + rejected + session_ops) is checked exactly. *)
  with_engine ~workers:3 ~queue:256 ~sessions:3 (fun e ->
      let n_domains = 4 and per_domain = 6 in
      let failures = Atomic.make 0 in
      let oneshots = Atomic.make 0 in
      let session_ops = Atomic.make 0 in
      let opens = Atomic.make 0 in
      let open_rejects = Atomic.make 0 in
      let complain fmt =
        Printf.ksprintf
          (fun msg ->
            Atomic.incr failures;
            print_endline ("session fuzz: " ^ msg))
          fmt
      in
      (* All three table slots can be momentarily busy (four domains):
         a rejected OPEN counts toward [rejected] and is retried. *)
      let rec open_counted () =
        match Server.open_session e with
        | Ok sid ->
          Atomic.incr opens;
          sid
        | Error _ ->
          Atomic.incr open_rejects;
          Unix.sleepf 0.002;
          open_counted ()
      in
      let sop sid op =
        Atomic.incr session_ops;
        match Server.session_submit e sid op with
        | Ok ticket -> Server.session_await e ticket
        | Error r -> Alcotest.failf "session op rejected: %s" r
      in
      let worker d () =
        let rng = Aig.Rng.create (0x5e5510 + d) in
        let sid = ref (open_counted ()) in
        for i = 1 to per_domain do
          let f = random_formula rng in
          let expected = brute_force_sat f in
          Atomic.incr oneshots;
          (match Server.solve e f with
           | Ok a -> (
             match a.Server.verdict with
             | Server.Sat m ->
               if not (Cnf.Formula.eval f m) then
                 complain "domain %d case %d: bad one-shot model" d i
             | Server.Unsat ->
               if expected then
                 complain "domain %d case %d: wrong one-shot UNSAT" d i
             | Server.Timeout | Server.Failed _ ->
               complain "domain %d case %d: one-shot non-answer" d i)
           | Error r ->
             complain "domain %d case %d: one-shot rejected: %s" d i r);
          (* Mirror the same formula in the session, under a frame so
             the session resets between rounds.  [finish] reopens
             after an eviction and replays the round. *)
          let rec session_round attempts =
            if attempts > 3 then
              complain "domain %d case %d: evicted repeatedly" d i
            else begin
              let evicted = ref false in
              let step op =
                if not !evicted then begin
                  let a = sop !sid op in
                  match a.Server.Session.outcome with
                  | Server.Session.Evicted -> evicted := true; None
                  | o -> Some o
                end
                else None
              in
              ignore (step Server.Session.Push);
              ignore
                (step
                   (Server.Session.Add
                      (Array.to_list f.Cnf.Formula.clauses)));
              (match step (Server.Session.Solve { deadline = None }) with
               | Some (Server.Session.Sat m) ->
                 if not expected then
                   complain "domain %d case %d: session SAT vs UNSAT" d i
                 else if
                   not
                     (Cnf.Formula.eval f
                        (fit_model ~num_vars:f.Cnf.Formula.num_vars m))
                 then complain "domain %d case %d: bad session model" d i
               | Some (Server.Session.Unsat _) ->
                 if expected then
                   complain "domain %d case %d: session UNSAT vs SAT" d i
               | Some o ->
                 complain "domain %d case %d: session answered %s" d i
                   (outcome_name o)
               | None -> ());
              ignore (step Server.Session.Pop);
              if !evicted then begin
                sid := open_counted ();
                session_round (attempts + 1)
              end
            end
          in
          session_round 0
        done;
        ignore (sop !sid Server.Session.Close)
      in
      let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join ds;
      check_int "no failures" 0 (Atomic.get failures);
      (* Close retirements land asynchronously; wait for every opened
         session to reach a terminal state before reconciling. *)
      await_counter "every session accounted"
        (fun () ->
          let s = Server.stats e in
          s.Server.Metrics.sessions_closed
          + s.Server.Metrics.sessions_evicted)
        (Atomic.get opens);
      let s = Server.stats e in
      check_int "no sessions left live" 0 s.Server.Metrics.sessions_live;
      check_int "session ops reconcile exactly" (Atomic.get session_ops)
        s.Server.Metrics.session_ops;
      check_int "requests reconcile exactly"
        (Atomic.get oneshots + Atomic.get session_ops
        + Atomic.get open_rejects)
        (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
        + s.Server.Metrics.warm_hits + s.Server.Metrics.dedup_joins
        + s.Server.Metrics.rejected + s.Server.Metrics.session_ops);
      check_int "opens reconcile" (Atomic.get opens)
        s.Server.Metrics.sessions_opened;
      check_int "every job completed"
        (s.Server.Metrics.submitted + s.Server.Metrics.warm_hits)
        s.Server.Metrics.completed)

(* --- warm starts ----------------------------------------------------- *)

let test_warm_resume_after_forget () =
  with_engine ~workers:1 (fun e ->
      let f = php 8 in
      let cold =
        match Server.solve e f with
        | Ok a -> a
        | Error r -> Alcotest.failf "cold solve rejected: %s" r
      in
      check_bool "php(8,7) UNSAT" true (cold.Server.verdict = Server.Unsat);
      check_bool "cold answer is fresh" true
        (cold.Server.source = Server.Solved);
      (* Drop the verdict but keep the snapshot: the resubmission must
         miss the result cache and resume from the warm seed instead. *)
      Server.forget_verdict e (Cnf.Fingerprint.of_formula f);
      let warm =
        match Server.solve e f with
        | Ok a -> a
        | Error r -> Alcotest.failf "warm solve rejected: %s" r
      in
      check_bool "warm answer is fresh, not cached" true
        (warm.Server.source = Server.Solved);
      check_bool "warm verdict agrees" true
        (warm.Server.verdict = Server.Unsat);
      let s = Server.stats e in
      check_int "one warm hit" 1 s.Server.Metrics.warm_hits;
      check_int "the hit was seeded into a solver" 1
        s.Server.Metrics.warm_seeded;
      check_int "only the cold pass counted as submitted" 1
        s.Server.Metrics.submitted;
      check_int "both passes completed" 2 s.Server.Metrics.completed;
      check_bool "seeded resume refutes with fewer conflicts" true
        (warm.Server.stats.Sat.Solver.conflicts
         < cold.Server.stats.Sat.Solver.conflicts))

let test_warm_disabled_when_zero () =
  with_engine ~warm:0 (fun e ->
      let f = php 7 in
      (match Server.solve e f with
       | Ok { Server.verdict = Server.Unsat; _ } -> ()
       | _ -> Alcotest.fail "php(7,6) must be UNSAT");
      Server.forget_verdict e (Cnf.Fingerprint.of_formula f);
      (match Server.solve e f with
       | Ok { Server.verdict = Server.Unsat; source = Server.Solved; _ } -> ()
       | _ -> Alcotest.fail "resubmission must be a fresh cold solve");
      let s = Server.stats e in
      check_int "no warm hits with warm_capacity = 0" 0
        s.Server.Metrics.warm_hits;
      check_int "no warm seeds" 0 s.Server.Metrics.warm_seeded;
      check_int "both solves were cold" 2 s.Server.Metrics.submitted)

let test_warm_timeout_resume () =
  with_engine ~workers:1 (fun e ->
      let f = php 9 in
      match Server.solve e ~deadline:0.02 f with
      | Error r -> Alcotest.failf "rejected: %s" r
      | Ok { Server.verdict = Server.Unsat; _ } ->
        (* The machine beat the tight deadline — nothing to resume. *)
        ()
      | Ok { Server.verdict = Server.Timeout; _ } ->
        (* A timeout never enters the verdict cache, but the
           interrupted run's snapshot does enter the warm cache: the
           resubmission resumes from it instead of restarting. *)
        (match Server.solve e f with
         | Ok { Server.verdict = Server.Unsat; source = Server.Solved; _ } ->
           ()
         | Ok _ -> Alcotest.fail "resumed php(9,8) must refute"
         | Error r -> Alcotest.failf "resume rejected: %s" r);
        let s = Server.stats e in
        check_int "the resume was a warm hit" 1 s.Server.Metrics.warm_hits;
        check_int "the interrupted snapshot was seeded" 1
          s.Server.Metrics.warm_seeded
      | Ok _ -> Alcotest.fail "php(9,8) answers UNSAT or Timeout")

let test_flat_bridges_verdict_cache () =
  with_engine (fun e ->
      let f =
        Cnf.Formula.create ~num_vars:4
          [ [| 1; 2 |]; [| -1; 3 |]; [| -3; 4 |]; [| 2; -4 |] ]
      in
      let m0 =
        match Server.solve e f with
        | Ok { Server.verdict = Server.Sat m; _ } -> m
        | _ -> Alcotest.fail "formula is satisfiable"
      in
      (* The same clauses, shuffled and with a duplicate literal, as a
         flat CSR store: the canonical fingerprint matches, so the
         answer must come from the cache — both ingest paths share one
         verdict space. *)
      let g =
        Cnf.Flat.of_formula
          (Cnf.Formula.create ~num_vars:4
             [ [| 2; -4; 2 |]; [| 4; -3 |]; [| 2; 1 |]; [| 3; -1 |] ])
      in
      (match Server.solve_flat e g with
       | Ok { Server.verdict = Server.Sat m; source = Server.Cache_hit; _ } ->
         Alcotest.(check (array bool)) "bit-identical model" m0 m
       | Ok _ -> Alcotest.fail "expected a cache hit for the flat twin"
       | Error r -> Alcotest.failf "flat submit rejected: %s" r);
      (* And the other direction: a flat-first solve caches the answer
         a later Formula submission picks up. *)
      let h = Cnf.Formula.create ~num_vars:2 [ [| 1 |]; [| -1; 2 |] ] in
      (match Server.solve_flat e (Cnf.Flat.of_formula h) with
       | Ok { Server.verdict = Server.Sat _; source = Server.Solved; _ } -> ()
       | _ -> Alcotest.fail "flat solve should be fresh");
      match Server.solve e h with
      | Ok { Server.verdict = Server.Sat _; source = Server.Cache_hit; _ } ->
        ()
      | _ -> Alcotest.fail "formula twin should hit the flat-built cache")

(* Two passes over a random batch with every verdict forgotten in
   between: the second pass runs on warm resumes, and the ledger still
   reconciles to the request count exactly. *)
let test_warm_fuzz () =
  with_engine ~workers:3 ~cache:256 ~warm:256 (fun e ->
      let rng = Aig.Rng.create 20260808 in
      let formulas = List.init 40 (fun _ -> random_formula rng) in
      let pass () =
        List.map (fun f -> (f, submit_ok e f)) formulas
        |> List.map (fun (f, t) -> (f, Server.await e t))
      in
      let first = pass () in
      List.iter
        (fun (f, (a : Server.answer)) ->
          match a.Server.verdict with
          | Server.Sat m ->
            check_bool "model satisfies" true (Cnf.Formula.eval f m)
          | Server.Unsat ->
            check_bool "brute force agrees UNSAT" false (brute_force_sat f)
          | _ -> Alcotest.fail "unexpected cold verdict")
        first;
      List.iter
        (fun f -> Server.forget_verdict e (Cnf.Fingerprint.of_formula f))
        formulas;
      let second = pass () in
      List.iter2
        (fun (_, (a : Server.answer)) (_, (b : Server.answer)) ->
          check_bool "warm verdict agrees with cold" true
            (match (a.Server.verdict, b.Server.verdict) with
             | Server.Sat _, Server.Sat _ -> true
             | Server.Unsat, Server.Unsat -> true
             | _ -> false))
        first second;
      let s = Server.stats e in
      check_int "every request accounted" 80
        (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
        + s.Server.Metrics.warm_hits + s.Server.Metrics.dedup_joins
        + s.Server.Metrics.rejected);
      check_int "every job completed"
        (s.Server.Metrics.submitted + s.Server.Metrics.warm_hits)
        s.Server.Metrics.completed;
      check_bool "seeds never exceed hits" true
        (s.Server.Metrics.warm_seeded <= s.Server.Metrics.warm_hits);
      check_bool "the second pass warm-resumed" true
        (s.Server.Metrics.warm_hits > 0))

(* --- cube-and-conquer escalation ------------------------------------- *)

let cube_cc ?(trigger = 50) ?(jobs = 2) () =
  {
    Server.cube_trigger = trigger;
    cube_count = 8;
    cube_jobs = jobs;
    cube_probe_limit = 16;
  }

let test_cube_escalation_refutes () =
  with_engine ~workers:1 ~cube:(cube_cc ()) (fun e ->
      (* php(8,7) burns far more than 50 conflicts: the first slice
         trips the hardness trigger and the job escalates to
         cube-and-conquer, which must still answer plain UNSAT. *)
      let f = php 8 in
      (match Server.solve e f with
       | Ok { Server.verdict = Server.Unsat; source = Server.Solved; _ } -> ()
       | Ok _ -> Alcotest.fail "cubed php(8,7) must answer fresh UNSAT"
       | Error r -> Alcotest.failf "rejected: %s" r);
      let s = Server.stats e in
      check_int "the job was cubed" 1 s.Server.Metrics.cubed;
      check_bool "cubes were solved" true (s.Server.Metrics.cubes_solved > 0);
      (* An easy formula answers inside the trigger slice and must not
         cube. *)
      let easy = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |] ] in
      (match Server.solve e easy with
       | Ok { Server.verdict = Server.Sat m; _ } ->
         check_bool "model satisfies" true (Cnf.Formula.eval easy m)
       | _ -> Alcotest.fail "easy formula must answer SAT");
      let s = Server.stats e in
      check_int "easy job did not cube" 1 s.Server.Metrics.cubed;
      (* Cube jobs must not feed the warm cache: with the verdict
         forgotten, the resubmission is a cold solve (which cubes
         again), never a warm resume of cube-local state. *)
      Server.forget_verdict e (Cnf.Fingerprint.of_formula f);
      (match Server.solve e f with
       | Ok { Server.verdict = Server.Unsat; source = Server.Solved; _ } -> ()
       | _ -> Alcotest.fail "resubmission must re-solve fresh");
      let s = Server.stats e in
      check_int "no warm hit from a cubed job" 0 s.Server.Metrics.warm_hits;
      check_int "no warm seed from a cubed job" 0
        s.Server.Metrics.warm_seeded;
      check_int "the resubmission cubed too" 2 s.Server.Metrics.cubed;
      (* The request ledger still reconciles with cube answers in it. *)
      check_int "every job completed"
        (s.Server.Metrics.submitted + s.Server.Metrics.warm_hits)
        s.Server.Metrics.completed;
      check_int "all answers decisive" s.Server.Metrics.completed
        (s.Server.Metrics.solved_sat + s.Server.Metrics.solved_unsat))

let test_cube_partial_never_cached () =
  with_engine ~workers:1 ~cube:(cube_cc ~trigger:10 ()) (fun e ->
      let f = php 9 in
      match Server.solve e ~deadline:0.02 f with
      | Error r -> Alcotest.failf "rejected: %s" r
      | Ok { Server.verdict = Server.Unsat; _ } ->
        (* The machine finished inside the deadline — the race this
           test provokes did not happen. *)
        ()
      | Ok a ->
        (* The deadline fired mid-conquest: a partially refuted cube
           run must resolve as a resource answer (or an explicit
           failure), never as UNSAT for the base formula. *)
        (match a.Server.verdict with
         | Server.Timeout | Server.Failed _ -> ()
         | Server.Sat _ -> Alcotest.fail "php(9,8) has no model"
         | Server.Unsat ->
           Alcotest.fail "partial cube conquest published UNSAT");
        (* Nothing may have entered the verdict cache: the resubmission
           solves fresh and gets the real answer. *)
        (match Server.solve e f with
         | Ok { Server.verdict = Server.Unsat; source = Server.Solved; _ } ->
           ()
         | Ok { Server.source = Server.Cache_hit; _ } ->
           Alcotest.fail "partial cube answer was cached"
         | Ok _ -> Alcotest.fail "resubmitted php(9,8) must refute fresh"
         | Error r -> Alcotest.failf "resubmit rejected: %s" r);
        (* And nothing may have entered the warm cache either — the
           interrupted run was a cube job. *)
        let s = Server.stats e in
        check_int "no warm resume from the aborted cube run" 0
          s.Server.Metrics.warm_hits)

(* The warm two-pass fuzz with cubing enabled: hard members escalate,
   easy ones take the plain path, and the ledger still reconciles —
   with no warm entry ever coming out of a cubed job. *)
let test_warm_fuzz_with_cubes () =
  with_engine ~workers:3 ~cache:256 ~warm:256 ~cube:(cube_cc ~trigger:20 ())
    (fun e ->
      let rng = Aig.Rng.create 20260809 in
      let formulas = php 7 :: php 8 :: List.init 20 (fun _ -> random_formula rng) in
      let pass () =
        List.map (fun f -> (f, submit_ok e f)) formulas
        |> List.map (fun (f, t) -> (f, Server.await e t))
      in
      let verify (f, (a : Server.answer)) =
        match a.Server.verdict with
        | Server.Sat m ->
          check_bool "model satisfies" true (Cnf.Formula.eval f m)
        | Server.Unsat ->
          if f.Cnf.Formula.num_vars <= 14 then
            check_bool "brute force agrees UNSAT" false (brute_force_sat f)
        | _ -> Alcotest.fail "unexpected non-answer"
      in
      let first = pass () in
      List.iter verify first;
      List.iter
        (fun f -> Server.forget_verdict e (Cnf.Fingerprint.of_formula f))
        formulas;
      let second = pass () in
      List.iter verify second;
      List.iter2
        (fun (_, (a : Server.answer)) (_, (b : Server.answer)) ->
          check_bool "second pass agrees with first" true
            (match (a.Server.verdict, b.Server.verdict) with
             | Server.Sat _, Server.Sat _ -> true
             | Server.Unsat, Server.Unsat -> true
             | _ -> false))
        first second;
      let s = Server.stats e in
      check_bool "the php members cubed" true (s.Server.Metrics.cubed >= 2);
      check_int "every request accounted"
        (2 * List.length formulas)
        (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
        + s.Server.Metrics.warm_hits + s.Server.Metrics.dedup_joins
        + s.Server.Metrics.rejected);
      check_int "every job completed"
        (s.Server.Metrics.submitted + s.Server.Metrics.warm_hits)
        s.Server.Metrics.completed;
      check_int "all answers decisive" s.Server.Metrics.completed
        (s.Server.Metrics.solved_sat + s.Server.Metrics.solved_unsat);
      check_bool "seeds never exceed hits" true
        (s.Server.Metrics.warm_seeded <= s.Server.Metrics.warm_hits))

(* --- learned dispatch ------------------------------------------------ *)

let with_trace_file f =
  let path = Filename.temp_file "eda4sat_server_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".1") with Sys_error _ -> ())
    (fun () -> f path)

(* A policy whose every head saw exactly one class: [decide] is forced
   to that class regardless of what the untrained net outputs, so a
   test can steer every job down one chosen leg.  [hard] picks the
   hardness target the admission test regresses toward. *)
let forced_policy ?(epochs = 5) ?lr ?(hard = 10.0) ~features ~lanes ~simplify
    ~cube () =
  let p = Dispatch.Policy.create ~hidden:[| 8 |] () in
  let entries =
    List.map
      (fun feat ->
        { Dispatch.Tracelog.fingerprint = "00";
          features = feat;
          lanes;
          simplify;
          cube_trigger = cube;
          outcome = "sat";
          conflicts = 1;
          solve_ms = hard;
          wall_ms = hard;
          decided = false })
      features
  in
  ignore (Dispatch.Policy.train ~epochs ?lr p entries);
  p

let test_dispatch_requires_direct () =
  let p = Dispatch.Policy.create () in
  let cfg =
    { (config ()) with
      Server.mode = Server.Simplify;
      dispatch =
        Some { Server.policy = Some p; trace = None; admission = false } }
  in
  Alcotest.check_raises "policy needs direct mode"
    (Invalid_argument "Engine.create: dispatch policy requires Direct mode")
    (fun () -> ignore (Server.create ~config:cfg ()))

(* With no model, a dispatch block that only traces must leave serving
   behavior byte-identical to a plain engine: same verdicts, same
   models, same solver statistics, and no dispatch counters. *)
let test_dispatch_traceonly_is_static () =
  with_trace_file (fun path ->
      let rng = Aig.Rng.create 4242 in
      let formulas = php 6 :: List.init 12 (fun _ -> random_formula rng) in
      let run_batch e = List.map (fun f -> Server.solve e f) formulas in
      let plain = with_engine ~workers:1 run_batch in
      let tl = Dispatch.Tracelog.open_file path in
      let traced =
        with_engine ~workers:1
          ~dispatch:
            { Server.policy = None; trace = Some tl; admission = false }
          run_batch
      in
      Dispatch.Tracelog.close tl;
      List.iter2
        (fun a b ->
          match (a, b) with
          | Ok (a : Server.answer), Ok (b : Server.answer) ->
            check_bool "identical verdict" true
              (a.Server.verdict = b.Server.verdict);
            (* The wall/cpu fields are timing; every search counter
               must match exactly. *)
            let sa = a.Server.stats and sb = b.Server.stats in
            check_int "same decisions" sa.Sat.Solver.decisions
              sb.Sat.Solver.decisions;
            check_int "same conflicts" sa.Sat.Solver.conflicts
              sb.Sat.Solver.conflicts;
            check_int "same propagations" sa.Sat.Solver.propagations
              sb.Sat.Solver.propagations;
            check_int "same restarts" sa.Sat.Solver.restarts
              sb.Sat.Solver.restarts;
            check_int "same learned" sa.Sat.Solver.learned
              sb.Sat.Solver.learned
          | _ -> Alcotest.fail "a batch member was rejected")
        plain traced;
      (* The trace recorded each completion, labeled as a static (not
         model-driven) decision on the single direct lane. *)
      let entries = Dispatch.Tracelog.read_file path in
      check_int "one entry per solve" (List.length formulas)
        (List.length entries);
      List.iter
        (fun (en : Dispatch.Tracelog.entry) ->
          check_bool "static decision recorded" false en.decided;
          check_int "single lane" 1 en.lanes;
          check_bool "no simplify" false en.simplify;
          check_bool "decisive outcome" true
            (en.outcome = "sat" || en.outcome = "unsat"))
        entries)

(* Every leg a policy can choose, one at a time, against the same
   batch: answers stay correct and the dispatch ledger reconciles
   exactly — each decision on exactly one leg, counted once even when
   the request later cache-hits or dedup-joins. *)
let test_dispatch_legs_reconcile () =
  let rng = Aig.Rng.create 999 in
  let formulas = php 5 :: List.init 10 (fun _ -> random_formula rng) in
  let features = List.map Dispatch.Features.of_formula formulas in
  let run ~lanes ~simplify check_leg =
    let p = forced_policy ~features ~lanes ~simplify ~cube:0 () in
    with_engine ~workers:2
      ~dispatch:{ Server.policy = Some p; trace = None; admission = false }
      (fun e ->
        let pass () =
          List.map (fun f -> (f, submit_ok e f)) formulas
          |> List.map (fun (f, t) -> (f, Server.await e t))
        in
        (* Two passes: the second answers from the cache and must not
           re-count dispatch decisions. *)
        let first = pass () in
        let second = pass () in
        List.iter
          (fun (f, (a : Server.answer)) ->
            match a.Server.verdict with
            | Server.Sat m ->
              check_bool "model satisfies" true (Cnf.Formula.eval f m)
            | Server.Unsat ->
              if f.Cnf.Formula.num_vars <= 14 then
                check_bool "brute force agrees" false (brute_force_sat f)
            | _ -> Alcotest.fail "unexpected non-answer")
          (first @ second);
        let s = Server.stats e in
        let n = List.length formulas in
        check_int "requests reconcile" (2 * n)
          (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
          + s.Server.Metrics.warm_hits + s.Server.Metrics.dedup_joins
          + s.Server.Metrics.rejected);
        check_int "legs sum to decided" s.Server.Metrics.dispatch_decided
          (s.Server.Metrics.dispatch_direct
          + s.Server.Metrics.dispatch_simplify
          + s.Server.Metrics.dispatch_raced
          + s.Server.Metrics.dispatch_rejected);
        (* Cache hits skip the policy; everything that got a decision
           was submitted or joined an in-flight twin. *)
        check_int "decided = submitted + joins"
          (s.Server.Metrics.submitted + s.Server.Metrics.dedup_joins)
          s.Server.Metrics.dispatch_decided;
        check_int "no admission rejections" 0
          s.Server.Metrics.dispatch_rejected;
        check_leg s)
  in
  run ~lanes:1 ~simplify:false (fun s ->
      check_int "all direct" s.Server.Metrics.dispatch_decided
        s.Server.Metrics.dispatch_direct);
  run ~lanes:1 ~simplify:true (fun s ->
      check_int "all simplify" s.Server.Metrics.dispatch_decided
        s.Server.Metrics.dispatch_simplify);
  run ~lanes:4 ~simplify:false (fun s ->
      check_int "all raced" s.Server.Metrics.dispatch_decided
        s.Server.Metrics.dispatch_raced)

(* A decided cube budget escalates a hard job even though the engine's
   static cube config is off. *)
let test_dispatch_decided_cube () =
  let f = php 8 in
  let features = [ Dispatch.Features.of_formula f ] in
  let p = forced_policy ~features ~lanes:1 ~simplify:false ~cube:2000 () in
  with_engine ~workers:1
    ~dispatch:{ Server.policy = Some p; trace = None; admission = false }
    (fun e ->
      (match Server.solve e f with
       | Ok { Server.verdict = Server.Unsat; _ } -> ()
       | Ok _ -> Alcotest.fail "php(8,7) must refute"
       | Error r -> Alcotest.failf "rejected: %s" r);
      let s = Server.stats e in
      check_int "decision escalated to cubes" 1 s.Server.Metrics.cubed;
      check_int "decision counted direct" 1 s.Server.Metrics.dispatch_direct)

(* Admission control: a policy regressed onto an enormous hardness
   target must reject deadlined jobs as predicted timeouts — and only
   deadlined ones; with no deadline there is nothing to miss. *)
let test_dispatch_admission () =
  let f = php 5 in
  (* Every training entry claims a ~1e9 ms solve; with the target
     formula's own features in the training set, the hardness head
     must regress far past a 50 ms deadline's 4x margin (200 ms). *)
  let rng = Aig.Rng.create 31337 in
  let features =
    Dispatch.Features.of_formula f
    :: List.init 15 (fun _ ->
           Dispatch.Features.of_formula (random_formula rng))
  in
  let p =
    forced_policy ~epochs:800 ~lr:0.02 ~hard:1e9 ~features ~lanes:1
      ~simplify:false ~cube:0 ()
  in
  let d = Dispatch.Policy.decide p (List.hd features) in
  check_bool
    (Printf.sprintf "policy predicts hopeless (%.0f ms)" d.predicted_ms)
    true
    (Float.is_finite d.predicted_ms && d.predicted_ms > 1e3);
  with_engine ~workers:1
    ~dispatch:{ Server.policy = Some p; trace = None; admission = true }
    (fun e ->
      (match Server.submit e ~deadline:0.05 f with
       | Error "predicted-timeout" -> ()
       | Error r -> Alcotest.failf "wrong rejection: %s" r
       | Ok _ -> Alcotest.fail "hopeless deadlined job must be refused");
      (* No deadline: admitted and solved despite the grim prediction. *)
      (match Server.solve e f with
       | Ok { Server.verdict = Server.Unsat; _ } -> ()
       | _ -> Alcotest.fail "php(5,4) must still refute without deadline");
      let s = Server.stats e in
      check_int "one admission rejection" 1
        s.Server.Metrics.dispatch_rejected;
      check_int "also in the request ledger" 1 s.Server.Metrics.rejected;
      check_int "requests reconcile" 2
        (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
        + s.Server.Metrics.warm_hits + s.Server.Metrics.dedup_joins
        + s.Server.Metrics.rejected);
      check_int "legs sum to decided" s.Server.Metrics.dispatch_decided
        (s.Server.Metrics.dispatch_direct
        + s.Server.Metrics.dispatch_simplify
        + s.Server.Metrics.dispatch_raced
        + s.Server.Metrics.dispatch_rejected));
  (* An untrained policy predicts nan and must never reject. *)
  let fresh = Dispatch.Policy.create () in
  with_engine ~workers:1
    ~dispatch:
      { Server.policy = Some fresh; trace = None; admission = true }
    (fun e ->
      match Server.solve e ~deadline:0.001 f with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "untrained policy rejected: %s" r)

(* --- job queue ------------------------------------------------------- *)

let test_job_queue_ordering () =
  let q = Server.Job_queue.create ~capacity:8 () in
  check_bool "push a" true (Server.Job_queue.push q ~priority:0 "a");
  check_bool "push b" true (Server.Job_queue.push q ~priority:5 "b");
  check_bool "push c" true (Server.Job_queue.push q ~priority:5 "c");
  check_bool "push d" true (Server.Job_queue.push q ~priority:(-1) "d");
  Server.Job_queue.close q;
  let drain = List.filter_map (fun () -> Server.Job_queue.pop q)
      [ (); (); (); () ] in
  Alcotest.(check (list string))
    "priority order, FIFO within a priority" [ "b"; "c"; "a"; "d" ] drain;
  check_bool "drained" true (Server.Job_queue.pop q = None)

let test_job_queue_backpressure () =
  let q = Server.Job_queue.create ~capacity:2 () in
  check_bool "1 fits" true (Server.Job_queue.push q ~priority:0 1);
  check_bool "2 fits" true (Server.Job_queue.push q ~priority:9 2);
  check_bool "3 rejected" false (Server.Job_queue.push q ~priority:99 3);
  check_int "length" 2 (Server.Job_queue.length q)

let suite =
  [
    ("solve basics", `Quick, test_solve_basics);
    ("cache hit is bit-identical", `Quick, test_cache_hit_bit_identical);
    ("dedup solves once", `Quick, test_dedup_solves_once);
    ("deadline answers TIMEOUT", `Quick, test_deadline_timeout);
    ("full queue rejects", `Quick, test_queue_full_rejection);
    ("shutdown idempotent", `Quick, test_shutdown_idempotent);
    ("concurrent submit/await fuzz", `Quick, test_concurrent_fuzz);
    ("warm start resumes after forget", `Quick, test_warm_resume_after_forget);
    ("warm starts disabled at capacity 0", `Quick, test_warm_disabled_when_zero);
    ("timeout snapshot resumes warm", `Quick, test_warm_timeout_resume);
    ("flat and formula share the cache", `Quick, test_flat_bridges_verdict_cache);
    ("warm two-pass fuzz reconciles", `Quick, test_warm_fuzz);
    ("cube escalation refutes and skips warm", `Quick,
     test_cube_escalation_refutes);
    ("partial cube conquest never cached", `Quick,
     test_cube_partial_never_cached);
    ("warm fuzz with cubes reconciles", `Quick, test_warm_fuzz_with_cubes);
    ("dispatch policy requires direct mode", `Quick,
     test_dispatch_requires_direct);
    ("trace-only dispatch is static", `Quick,
     test_dispatch_traceonly_is_static);
    ("dispatch legs reconcile", `Quick, test_dispatch_legs_reconcile);
    ("dispatch decided cube escalates", `Quick, test_dispatch_decided_cube);
    ("dispatch admission control", `Quick, test_dispatch_admission);
    ("job queue ordering", `Quick, test_job_queue_ordering);
    ("job queue backpressure", `Quick, test_job_queue_backpressure);
    ("session basics", `Quick, test_session_basics);
    ("session push/pop", `Quick, test_session_push_pop);
    ("session LRU eviction", `Quick, test_session_eviction_lru);
    ("session table full when busy", `Quick, test_session_table_full_when_busy);
    ("session TTL eviction", `Quick, test_session_ttl_eviction);
    ("session deadline interrupt", `Quick, test_session_deadline_interrupt);
    ("bad deadline rejected", `Quick, test_bad_deadline_rejected);
    ("model line clamps/pads", `Quick, test_model_line_clamps);
    ("concurrent session fuzz", `Quick, test_session_fuzz);
  ]
