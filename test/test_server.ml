(* The concurrent solve service: queue semantics, cache hits serving
   bit-identical verified models, in-flight deduplication, deadline
   enforcement, admission control, and a multi-domain submit/await
   fuzz with metrics reconciliation. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config ?(workers = 2) ?(queue = 64) ?(cache = 64) () =
  {
    Server.workers;
    queue_capacity = queue;
    cache_capacity = cache;
    mode = Server.Direct;
    limits = Sat.Solver.no_limits;
    default_deadline = None;
  }

let with_engine ?workers ?queue ?cache f =
  let e = Server.create ~config:(config ?workers ?queue ?cache ()) () in
  Fun.protect ~finally:(fun () -> Server.shutdown e) (fun () -> f e)

let submit_ok e ?deadline ?priority f =
  match Server.submit e ?deadline ?priority f with
  | Ok t -> t
  | Error r -> Alcotest.failf "submit rejected: %s" r

let brute_force_sat f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 14);
  let rec try_assignment m =
    m < 1 lsl n
    && (Cnf.Formula.eval f (Array.init n (fun i -> m land (1 lsl i) <> 0))
        || try_assignment (m + 1))
  in
  try_assignment 0

let random_formula rng =
  let nvars = 2 + Aig.Rng.int rng 11 in
  let nclauses = 1 + Aig.Rng.int rng (4 * nvars) in
  Cnf.Formula.create ~num_vars:nvars
    (List.init nclauses (fun _ ->
         Array.init
           (1 + Aig.Rng.int rng 4)
           (fun _ ->
             let v = 1 + Aig.Rng.int rng nvars in
             if Aig.Rng.bool rng then v else -v)))

let php n = Workloads.Satcomp.pigeonhole ~pigeons:n ~holes:(n - 1)

(* --- basics ---------------------------------------------------------- *)

let test_solve_basics () =
  with_engine (fun e ->
      let sat = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |] ] in
      (match Server.solve e sat with
       | Ok { Server.verdict = Server.Sat m; source = Server.Solved; _ } ->
         check_bool "model satisfies" true (Cnf.Formula.eval sat m)
       | Ok _ -> Alcotest.fail "expected a fresh SAT answer"
       | Error r -> Alcotest.failf "rejected: %s" r);
      match Server.solve e (php 5) with
      | Ok { Server.verdict = Server.Unsat; _ } -> ()
      | Ok _ -> Alcotest.fail "php(5,4) must be UNSAT"
      | Error r -> Alcotest.failf "rejected: %s" r)

let test_cache_hit_bit_identical () =
  with_engine (fun e ->
      let f =
        Cnf.Formula.create ~num_vars:4
          [ [| 1; 2 |]; [| -1; 3 |]; [| -3; 4 |]; [| 2; -4 |] ]
      in
      let cold =
        match Server.solve e f with
        | Ok a -> a
        | Error r -> Alcotest.failf "cold solve rejected: %s" r
      in
      let m0 =
        match cold.Server.verdict with
        | Server.Sat m -> m
        | _ -> Alcotest.fail "formula is satisfiable"
      in
      (* Clause order and duplicate literals differ; the canonical
         fingerprint matches, so this must answer from the cache with
         the very same model. *)
      let g =
        Cnf.Formula.create ~num_vars:4
          [ [| 2; -4; 2 |]; [| 4; -3 |]; [| 2; 1 |]; [| 3; -1 |] ]
      in
      match Server.solve e g with
      | Ok { Server.verdict = Server.Sat m; source = Server.Cache_hit; _ } ->
        Alcotest.(check (array bool)) "bit-identical model" m0 m;
        check_bool "valid for the renamed duplicate" true
          (Cnf.Formula.eval g m);
        check_int "one cache hit" 1 (Server.stats e).Server.Metrics.cache_hits
      | Ok a ->
        Alcotest.failf "expected cache hit, got source=%s"
          (match a.Server.source with
           | Server.Solved -> "solved"
           | Server.Cache_hit -> "cache"
           | Server.Dedup_join -> "join")
      | Error r -> Alcotest.failf "rejected: %s" r)

let test_dedup_solves_once () =
  with_engine ~workers:1 (fun e ->
      (* A busy worker keeps [f] queued, so the second submit of the
         same formula must attach to the first job instead of creating
         a new one. *)
      let blocker = submit_ok e (php 9) in
      let f = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -2; 3 |] ] in
      let t1 = submit_ok e f in
      let t2 = submit_ok e f in
      let a1 = Server.await e t1 in
      let a2 = Server.await e t2 in
      ignore (Server.await e blocker);
      let model = function
        | { Server.verdict = Server.Sat m; _ } -> m
        | _ -> Alcotest.fail "satisfiable formula"
      in
      Alcotest.(check (array bool)) "same answer" (model a1) (model a2);
      check_bool "one of the two joined" true
        (a1.Server.source = Server.Dedup_join
         || a2.Server.source = Server.Dedup_join);
      let s = Server.stats e in
      check_int "dedup recorded" 1 s.Server.Metrics.dedup_joins;
      (* blocker + f: exactly two jobs actually entered the queue. *)
      check_int "two jobs created" 2 s.Server.Metrics.submitted)

let test_deadline_timeout () =
  with_engine ~workers:1 (fun e ->
      let t0 = Unix.gettimeofday () in
      match Server.solve e ~deadline:0.15 (php 11) with
      | Ok { Server.verdict = Server.Timeout; _ } ->
        let took = Unix.gettimeofday () -. t0 in
        check_bool
          (Printf.sprintf "answered near the deadline (%.2fs)" took)
          true (took < 5.0);
        check_int "timeout counted" 1 (Server.stats e).Server.Metrics.timeouts
      | Ok _ -> Alcotest.fail "php(11,10) cannot finish in 150ms here"
      | Error r -> Alcotest.failf "rejected: %s" r)

let test_queue_full_rejection () =
  with_engine ~workers:1 ~queue:2 (fun e ->
      let _blocker = submit_ok e (php 11) in
      (* Let the single worker pop the blocker so the queue is empty
         but the worker is busy for a long time. *)
      Unix.sleepf 0.05;
      let _q1 = submit_ok e (php 12) in
      let _q2 = submit_ok e (php 13) in
      (match Server.submit e (php 14) with
       | Error reason ->
         check_bool "reason mentions the queue" true
           (String.length reason > 0)
       | Ok _ -> Alcotest.fail "queue of 2 accepted a third waiter");
      let s = Server.stats e in
      check_int "rejection counted" 1 s.Server.Metrics.rejected;
      check_int "queue depth at capacity" 2 s.Server.Metrics.queue_depth)
  (* shutdown interrupts the running php(11,10) and fails the queued
     jobs; with_engine's finally exercises that path. *)

let test_shutdown_idempotent () =
  let e = Server.create ~config:(config ()) () in
  let f = Cnf.Formula.create ~num_vars:2 [ [| 1 |]; [| 2 |] ] in
  (match Server.solve e f with
   | Ok { Server.verdict = Server.Sat _; _ } -> ()
   | _ -> Alcotest.fail "simple solve failed");
  Server.shutdown e;
  Server.shutdown e;
  match Server.submit e f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit accepted after shutdown"

let test_concurrent_fuzz () =
  with_engine ~workers:3 ~queue:256 (fun e ->
      let n_domains = 4 and per_domain = 20 in
      let failures = Atomic.make 0 in
      let complain fmt =
        Printf.ksprintf
          (fun msg ->
            Atomic.incr failures;
            print_endline ("fuzz: " ^ msg))
          fmt
      in
      let worker d () =
        (* Overlapping seed ranges across domains provoke dedup joins
           and cache hits alongside fresh solves. *)
        for i = 0 to per_domain - 1 do
          let rng = Aig.Rng.create (1000 + ((d + i) mod 17)) in
          let f = random_formula rng in
          match Server.solve e f with
          | Error r -> complain "domain %d case %d rejected: %s" d i r
          | Ok a -> (
            match a.Server.verdict with
            | Server.Sat m ->
              if not (Cnf.Formula.eval f m) then
                complain "domain %d case %d: bad model" d i
            | Server.Unsat ->
              if brute_force_sat f then
                complain "domain %d case %d: wrong UNSAT" d i
            | Server.Timeout | Server.Failed _ ->
              complain "domain %d case %d: unexpected non-answer" d i)
        done
      in
      let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join ds;
      check_int "no failures" 0 (Atomic.get failures);
      let s = Server.stats e in
      check_int "every request accounted"
        (n_domains * per_domain)
        (s.Server.Metrics.submitted + s.Server.Metrics.cache_hits
        + s.Server.Metrics.dedup_joins);
      check_int "every job completed" s.Server.Metrics.submitted
        s.Server.Metrics.completed;
      check_int "all answers decisive" s.Server.Metrics.completed
        (s.Server.Metrics.solved_sat + s.Server.Metrics.solved_unsat);
      check_bool "cache or dedup observed" true
        (s.Server.Metrics.cache_hits + s.Server.Metrics.dedup_joins > 0))

(* --- job queue ------------------------------------------------------- *)

let test_job_queue_ordering () =
  let q = Server.Job_queue.create ~capacity:8 () in
  check_bool "push a" true (Server.Job_queue.push q ~priority:0 "a");
  check_bool "push b" true (Server.Job_queue.push q ~priority:5 "b");
  check_bool "push c" true (Server.Job_queue.push q ~priority:5 "c");
  check_bool "push d" true (Server.Job_queue.push q ~priority:(-1) "d");
  Server.Job_queue.close q;
  let drain = List.filter_map (fun () -> Server.Job_queue.pop q)
      [ (); (); (); () ] in
  Alcotest.(check (list string))
    "priority order, FIFO within a priority" [ "b"; "c"; "a"; "d" ] drain;
  check_bool "drained" true (Server.Job_queue.pop q = None)

let test_job_queue_backpressure () =
  let q = Server.Job_queue.create ~capacity:2 () in
  check_bool "1 fits" true (Server.Job_queue.push q ~priority:0 1);
  check_bool "2 fits" true (Server.Job_queue.push q ~priority:9 2);
  check_bool "3 rejected" false (Server.Job_queue.push q ~priority:99 3);
  check_int "length" 2 (Server.Job_queue.length q)

let suite =
  [
    ("solve basics", `Quick, test_solve_basics);
    ("cache hit is bit-identical", `Quick, test_cache_hit_bit_identical);
    ("dedup solves once", `Quick, test_dedup_solves_once);
    ("deadline answers TIMEOUT", `Quick, test_deadline_timeout);
    ("full queue rejects", `Quick, test_queue_full_rejection);
    ("shutdown idempotent", `Quick, test_shutdown_idempotent);
    ("concurrent submit/await fuzz", `Quick, test_concurrent_fuzz);
    ("job queue ordering", `Quick, test_job_queue_ordering);
    ("job queue backpressure", `Quick, test_job_queue_backpressure);
  ]
