(* Differential fuzzing of the CDCL core: 500 random CNFs (up to 14
   variables, mixed clause lengths, seeded via Aig.Rng) cross-checked
   against brute-force enumeration.  Models are validated with
   Cnf.Formula.eval, UNSAT answers with Sat.Proof.check, and the cases
   cycle through both branching heuristics and both restart schemes. *)

let check_bool = Alcotest.(check bool)

let brute_force_sat f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 14);
  let rec try_assignment m =
    m < 1 lsl n
    && (Cnf.Formula.eval f (Array.init n (fun i -> m land (1 lsl i) <> 0))
        || try_assignment (m + 1))
  in
  try_assignment 0

let random_formula rng =
  let nvars = 2 + Aig.Rng.int rng 13 in
  let nclauses = 1 + Aig.Rng.int rng (5 * nvars) in
  let clauses =
    List.init nclauses (fun _ ->
        let len = 1 + Aig.Rng.int rng 5 in
        Array.init len (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v))
  in
  Cnf.Formula.create ~num_vars:nvars clauses

let configs =
  [|
    (`Evsids, `Luby, "evsids/luby");
    (`Evsids, `Glucose, "evsids/glucose");
    (`Lrb, `Luby, "lrb/luby");
    (`Lrb, `Glucose, "lrb/glucose");
  |]

let test_fuzz_vs_brute_force () =
  let rng = Aig.Rng.create 20250805 in
  for i = 1 to 500 do
    let f = random_formula rng in
    let expected = brute_force_sat f in
    let heuristic, restarts, cfg = configs.(i mod Array.length configs) in
    let proof = Sat.Proof.create () in
    match fst (Sat.Solver.solve ~proof ~heuristic ~restarts f) with
    | Sat.Solver.Sat m ->
      if not expected then
        Alcotest.failf "case %d (%s): solver SAT, brute force UNSAT" i cfg;
      if not (Cnf.Formula.eval f m) then
        Alcotest.failf "case %d (%s): model does not satisfy" i cfg
    | Sat.Solver.Unsat ->
      if expected then
        Alcotest.failf "case %d (%s): solver UNSAT, brute force SAT" i cfg;
      if not (Sat.Proof.check f proof) then
        Alcotest.failf "case %d (%s): DRAT proof fails to validate" i cfg
    | Sat.Solver.Unknown ->
      Alcotest.failf "case %d (%s): unexpected Unknown" i cfg
  done;
  check_bool "fuzz 500/500" true true

let test_fuzz_incremental_agreement () =
  (* A smaller incremental sweep: batch answer, incremental answer and
     incremental-under-assumptions answers must agree with brute
     force on the strengthened formula. *)
  let rng = Aig.Rng.create 777 in
  for i = 1 to 100 do
    let f = random_formula rng in
    let nvars = f.Cnf.Formula.num_vars in
    let s = Sat.Solver.Incremental.create () in
    Sat.Solver.Incremental.add_formula s f;
    while Sat.Solver.Incremental.num_vars s < nvars do
      ignore (Sat.Solver.Incremental.new_var s)
    done;
    let assumptions =
      Array.init
        (1 + Aig.Rng.int rng 3)
        (fun _ ->
          let v = 1 + Aig.Rng.int rng nvars in
          if Aig.Rng.bool rng then v else -v)
    in
    let f' =
      Cnf.Formula.add_clauses f
        (Array.to_list (Array.map (fun l -> [| l |]) assumptions))
    in
    let expected = brute_force_sat f' in
    match fst (Sat.Solver.Incremental.solve ~assumptions s) with
    | Sat.Solver.Sat m ->
      if not expected then
        Alcotest.failf "case %d: incremental SAT, brute force UNSAT" i;
      if not (Cnf.Formula.eval f' (Array.sub m 0 nvars)) then
        Alcotest.failf "case %d: incremental model violates assumptions" i
    | Sat.Solver.Unsat ->
      if expected then
        Alcotest.failf "case %d: incremental UNSAT, brute force SAT" i
    | Sat.Solver.Unknown -> Alcotest.failf "case %d: unexpected Unknown" i
  done;
  check_bool "incremental fuzz 100/100" true true

let suite =
  [
    ("fuzz: 500 random CNFs vs brute force", `Quick,
     test_fuzz_vs_brute_force);
    ("fuzz: incremental agreement under assumptions", `Quick,
     test_fuzz_incremental_agreement);
  ]
