(* Differential fuzzing of the CDCL core: 500 random CNFs (up to 14
   variables, mixed clause lengths, seeded via Aig.Rng) cross-checked
   against brute-force enumeration.  Models are validated with
   Cnf.Formula.eval, UNSAT answers with Sat.Proof.check, and the cases
   cycle through both branching heuristics and both restart schemes. *)

let check_bool = Alcotest.(check bool)

let brute_force_sat f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 14);
  let rec try_assignment m =
    m < 1 lsl n
    && (Cnf.Formula.eval f (Array.init n (fun i -> m land (1 lsl i) <> 0))
        || try_assignment (m + 1))
  in
  try_assignment 0

let random_formula rng =
  let nvars = 2 + Aig.Rng.int rng 13 in
  let nclauses = 1 + Aig.Rng.int rng (5 * nvars) in
  let clauses =
    List.init nclauses (fun _ ->
        let len = 1 + Aig.Rng.int rng 5 in
        Array.init len (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v))
  in
  Cnf.Formula.create ~num_vars:nvars clauses

let configs =
  [|
    (`Evsids, `Luby, "evsids/luby");
    (`Evsids, `Glucose, "evsids/glucose");
    (`Lrb, `Luby, "lrb/luby");
    (`Lrb, `Glucose, "lrb/glucose");
  |]

let test_fuzz_vs_brute_force () =
  let rng = Aig.Rng.create 20250805 in
  for i = 1 to 500 do
    let f = random_formula rng in
    let expected = brute_force_sat f in
    let heuristic, restarts, cfg = configs.(i mod Array.length configs) in
    let proof = Sat.Proof.create () in
    match fst (Sat.Solver.solve ~proof ~heuristic ~restarts f) with
    | Sat.Solver.Sat m ->
      if not expected then
        Alcotest.failf "case %d (%s): solver SAT, brute force UNSAT" i cfg;
      if not (Cnf.Formula.eval f m) then
        Alcotest.failf "case %d (%s): model does not satisfy" i cfg
    | Sat.Solver.Unsat ->
      if expected then
        Alcotest.failf "case %d (%s): solver UNSAT, brute force SAT" i cfg;
      if not (Sat.Proof.check f proof) then
        Alcotest.failf "case %d (%s): DRAT proof fails to validate" i cfg
    | Sat.Solver.Unknown ->
      Alcotest.failf "case %d (%s): unexpected Unknown" i cfg
  done;
  check_bool "fuzz 500/500" true true

let test_fuzz_incremental_agreement () =
  (* A smaller incremental sweep: batch answer, incremental answer and
     incremental-under-assumptions answers must agree with brute
     force on the strengthened formula. *)
  let rng = Aig.Rng.create 777 in
  for i = 1 to 100 do
    let f = random_formula rng in
    let nvars = f.Cnf.Formula.num_vars in
    let s = Sat.Solver.Incremental.create () in
    Sat.Solver.Incremental.add_formula s f;
    while Sat.Solver.Incremental.num_vars s < nvars do
      ignore (Sat.Solver.Incremental.new_var s)
    done;
    let assumptions =
      Array.init
        (1 + Aig.Rng.int rng 3)
        (fun _ ->
          let v = 1 + Aig.Rng.int rng nvars in
          if Aig.Rng.bool rng then v else -v)
    in
    let f' =
      Cnf.Formula.add_clauses f
        (Array.to_list (Array.map (fun l -> [| l |]) assumptions))
    in
    let expected = brute_force_sat f' in
    match fst (Sat.Solver.Incremental.solve ~assumptions s) with
    | Sat.Solver.Sat m ->
      if not expected then
        Alcotest.failf "case %d: incremental SAT, brute force UNSAT" i;
      if not (Cnf.Formula.eval f' (Array.sub m 0 nvars)) then
        Alcotest.failf "case %d: incremental model violates assumptions" i
    | Sat.Solver.Unsat ->
      if expected then
        Alcotest.failf "case %d: incremental UNSAT, brute force SAT" i
    | Sat.Solver.Unknown -> Alcotest.failf "case %d: unexpected Unknown" i
  done;
  check_bool "incremental fuzz 100/100" true true

let random_assumptions rng nvars =
  Array.init
    (1 + Aig.Rng.int rng 3)
    (fun _ ->
      let v = 1 + Aig.Rng.int rng nvars in
      if Aig.Rng.bool rng then v else -v)

(* Near-threshold random 3-SAT, too large for brute force: these cases
   generate enough long learnt clauses to overflow a small learnt cap
   and force arena compactions.  Correctness is still fully checked —
   models via eval, Unsat via the DRAT log. *)
let random_hard_formula rng =
  let nvars = 16 + Aig.Rng.int rng 10 in
  let nclauses = int_of_float (4.3 *. float_of_int nvars) in
  let clauses =
    List.init nclauses (fun _ ->
        Array.init 3 (fun _ ->
            let v = 1 + Aig.Rng.int rng nvars in
            if Aig.Rng.bool rng then v else -v))
  in
  Cnf.Formula.create ~num_vars:nvars clauses

let with_units f assumptions =
  Cnf.Formula.add_clauses f
    (Array.to_list (Array.map (fun l -> [| l |]) assumptions))

let test_fuzz_arena_compaction () =
  (* Incremental sessions driven with a tiny learnt-database cap
     (reduce_base=8, reduce_inc=4), so queries trigger many reduce-DB
     rounds and hence arena compactions; clauses arrive in two chunks
     with a solve in between, so later clauses land in an
     already-compacted arena.  Every answer is checked against brute
     force, one DRAT log spans the whole session, and when the final
     assumption-free solve answers Unsat the log must validate
     end-to-end against the full formula. *)
  let rng = Aig.Rng.create 424242 in
  let total_reduces = ref 0 in
  let proofs_checked = ref 0 in
  for i = 1 to 80 do
    (* Every fourth case is a brute-forceable small formula; the rest
       are larger near-threshold instances that actually stress the
       compactor. *)
    let small = i mod 4 = 0 in
    let f = if small then random_formula rng else random_hard_formula rng in
    let nvars = f.Cnf.Formula.num_vars in
    let clauses = f.Cnf.Formula.clauses in
    let half = Array.length clauses / 2 in
    let s = Sat.Solver.Incremental.create () in
    let proof = Sat.Proof.create () in
    let solve assumptions =
      Sat.Solver.Incremental.solve ~proof ~reduce_base:8 ~reduce_inc:4
        ~assumptions s
    in
    Array.iteri
      (fun k c -> if k < half then Sat.Solver.Incremental.add_clause s c)
      clauses;
    while Sat.Solver.Incremental.num_vars s < nvars do
      ignore (Sat.Solver.Incremental.new_var s)
    done;
    (* Mid-session query on the half-loaded formula. *)
    let a0 = random_assumptions rng nvars in
    let f_half =
      Cnf.Formula.create ~num_vars:nvars
        (List.filteri (fun k _ -> k < half) (Array.to_list clauses))
    in
    (match fst (solve a0) with
     | Sat.Solver.Sat m ->
       if not (Cnf.Formula.eval (with_units f_half a0) (Array.sub m 0 nvars))
       then Alcotest.failf "case %d: half-formula model invalid" i
     | Sat.Solver.Unsat ->
       if small && brute_force_sat (with_units f_half a0) then
         Alcotest.failf "case %d: half-formula UNSAT but brute force SAT" i
     | Sat.Solver.Unknown -> Alcotest.failf "case %d: unexpected Unknown" i);
    Array.iteri
      (fun k c -> if k >= half then Sat.Solver.Incremental.add_clause s c)
      clauses;
    for q = 1 to 2 do
      let a = random_assumptions rng nvars in
      let f' = with_units f a in
      match fst (solve a) with
      | Sat.Solver.Sat m ->
        if not (Cnf.Formula.eval f' (Array.sub m 0 nvars)) then
          Alcotest.failf "case %d query %d: model invalid" i q
      | Sat.Solver.Unsat ->
        if small && brute_force_sat f' then
          Alcotest.failf "case %d query %d: UNSAT but brute force SAT" i q;
        let core = Sat.Solver.Incremental.last_core s in
        if
          not
            (Array.for_all (fun l -> Array.exists (( = ) l) a) core)
        then Alcotest.failf "case %d query %d: core not within assumptions" i q
      | Sat.Solver.Unknown -> Alcotest.failf "case %d query %d: Unknown" i q
    done;
    (* Final assumption-free solve: seals the proof when Unsat. *)
    let result, st = solve [||] in
    total_reduces := !total_reduces + st.Sat.Solver.reduces;
    (match result with
     | Sat.Solver.Sat m ->
       if small && not (brute_force_sat f) then
         Alcotest.failf "case %d: final SAT but brute force UNSAT" i;
       if not (Cnf.Formula.eval f (Array.sub m 0 nvars)) then
         Alcotest.failf "case %d: final model invalid" i
     | Sat.Solver.Unsat ->
       if small && brute_force_sat f then
         Alcotest.failf "case %d: final UNSAT but brute force SAT" i;
       if not (Sat.Proof.check f proof) then
         Alcotest.failf "case %d: session DRAT log fails to validate" i;
       incr proofs_checked
     | Sat.Solver.Unknown -> Alcotest.failf "case %d: final Unknown" i)
  done;
  check_bool "some sessions ended Unsat with a checked proof" true
    (!proofs_checked > 0);
  check_bool "reduce-DB compactions were exercised" true (!total_reduces > 0)

let test_php_incremental_compaction_directed () =
  (* Deterministic heavy case: php(6,5) under assumptions with a tiny
     learnt cap guarantees several compactions in one session, with the
     sealed DRAT log checked end-to-end. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let s = Sat.Solver.Incremental.create () in
  Sat.Solver.Incremental.add_formula s f;
  let proof = Sat.Proof.create () in
  let solve assumptions =
    Sat.Solver.Incremental.solve ~proof ~reduce_base:8 ~reduce_inc:4
      ~assumptions s
  in
  (* Pigeon 1 in hole 1 — still unsatisfiable overall. *)
  (match fst (solve [| 1 |]) with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(6,5) under assumption must be Unsat");
  let result, st = solve [||] in
  (match result with
   | Sat.Solver.Unsat -> ()
   | _ -> Alcotest.fail "php(6,5) must be Unsat");
  check_bool "multiple compactions in one session" true
    (st.Sat.Solver.reduces >= 2);
  check_bool "php session proof validates" true (Sat.Proof.check f proof)

let suite =
  [
    ("fuzz: 500 random CNFs vs brute force", `Quick,
     test_fuzz_vs_brute_force);
    ("fuzz: incremental agreement under assumptions", `Quick,
     test_fuzz_incremental_agreement);
    ("fuzz: arena compaction under incremental assumptions", `Quick,
     test_fuzz_arena_compaction);
    ("directed: php compaction session with DRAT", `Quick,
     test_php_incremental_compaction_directed);
  ]
