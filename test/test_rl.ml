(* Tests for the RL substrate: MLP gradients and capacity, replay
   buffer semantics, and DQN learning a toy MDP to optimality. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* MLP *)

let test_mlp_shapes () =
  let net = Rl.Mlp.create ~sizes:[| 3; 5; 2 |] ~seed:1 in
  check "in" 3 (Rl.Mlp.input_dim net);
  check "out" 2 (Rl.Mlp.output_dim net);
  check "params" ((3 * 5) + 5 + (5 * 2) + 2) (Rl.Mlp.parameter_count net);
  let y = Rl.Mlp.forward net [| 0.1; -0.2; 0.3 |] in
  check "output length" 2 (Array.length y);
  Alcotest.check_raises "bad input"
    (Invalid_argument "Mlp.forward: input dimension mismatch") (fun () ->
      ignore (Rl.Mlp.forward net [| 1.0 |]))

let test_mlp_gradient_check () =
  (* Numeric gradient of the loss w.r.t. the first layer weights must
     match the training step's analytic direction.  We verify by
     checking that a small Adam-free proxy — the loss decreases under
     repeated small steps. *)
  let net = Rl.Mlp.create ~sizes:[| 2; 8; 3 |] ~seed:11 in
  let sample = ([| 0.5; -1.0 |], 1, 0.7) in
  let loss0 = Rl.Mlp.train_batch net ~lr:1e-2 [| sample |] in
  let rec go i last =
    if i = 0 then last else go (i - 1) (Rl.Mlp.train_batch net ~lr:1e-2 [| sample |])
  in
  let loss_final = go 200 loss0 in
  check_bool
    (Printf.sprintf "loss decreased (%.4f -> %.6f)" loss0 loss_final)
    true
    (loss_final < loss0 /. 10.0)

let test_mlp_fits_xor () =
  (* Regression of XOR onto output 0: classic non-linear sanity test. *)
  let net = Rl.Mlp.create ~sizes:[| 2; 16; 1 |] ~seed:5 in
  let data =
    [|
      ([| 0.0; 0.0 |], 0, 0.0);
      ([| 0.0; 1.0 |], 0, 1.0);
      ([| 1.0; 0.0 |], 0, 1.0);
      ([| 1.0; 1.0 |], 0, 0.0);
    |]
  in
  let final_loss = ref infinity in
  for _ = 1 to 2000 do
    final_loss := Rl.Mlp.train_batch net ~lr:5e-3 data
  done;
  check_bool
    (Printf.sprintf "xor fitted (loss %.5f)" !final_loss)
    true (!final_loss < 0.01)

let test_mlp_copy_and_clone () =
  let a = Rl.Mlp.create ~sizes:[| 2; 4; 2 |] ~seed:1 in
  let b = Rl.Mlp.create ~sizes:[| 2; 4; 2 |] ~seed:99 in
  let x = [| 0.3; -0.7 |] in
  check_bool "different nets differ" true (Rl.Mlp.forward a x <> Rl.Mlp.forward b x);
  Rl.Mlp.copy_weights ~src:a ~dst:b;
  check_bool "copied nets agree" true (Rl.Mlp.forward a x = Rl.Mlp.forward b x);
  let c = Rl.Mlp.clone a in
  check_bool "clone agrees" true (Rl.Mlp.forward a x = Rl.Mlp.forward c x);
  (* Training the clone must not affect the original. *)
  let before = Rl.Mlp.forward a x in
  ignore (Rl.Mlp.train_batch c ~lr:0.1 [| (x, 0, 5.0) |]);
  check_bool "original untouched" true (Rl.Mlp.forward a x = before)

let test_mlp_save_load () =
  let a = Rl.Mlp.create ~sizes:[| 3; 7; 4 |] ~seed:42 in
  let s = Rl.Mlp.save_string a in
  let b = Rl.Mlp.load_string s in
  let x = [| 0.1; 0.2; -0.3 |] in
  let ya = Rl.Mlp.forward a x and yb = Rl.Mlp.forward b x in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-12)) "coord" v yb.(i))
    ya

(* ------------------------------------------------------------------ *)
(* Replay *)

let tr s a r s' =
  { Rl.Replay.state = [| s |]; action = a; reward = r;
    next_state = Option.map (fun x -> [| x |]) s' }

let test_replay_ring () =
  let buf = Rl.Replay.create ~capacity:3 ~seed:1 in
  check "empty" 0 (Rl.Replay.size buf);
  Rl.Replay.push buf (tr 1.0 0 0.0 None);
  Rl.Replay.push buf (tr 2.0 0 0.0 None);
  check "two" 2 (Rl.Replay.size buf);
  Rl.Replay.push buf (tr 3.0 0 0.0 None);
  Rl.Replay.push buf (tr 4.0 0 0.0 None);
  check "capped" 3 (Rl.Replay.size buf);
  (* Entry 1.0 was overwritten: samples never contain it. *)
  let samples = Rl.Replay.sample buf 100 in
  Array.iter
    (fun t -> check_bool "no stale entry" true (t.Rl.Replay.state.(0) > 1.5))
    samples

let test_replay_empty_sample () =
  let buf = Rl.Replay.create ~capacity:2 ~seed:1 in
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Replay.sample: empty buffer") (fun () ->
      ignore (Rl.Replay.sample buf 1))

(* ------------------------------------------------------------------ *)
(* DQN on a toy MDP: a 1-D corridor of 5 cells; action 1 moves right,
   action 0 moves left; reward 1.0 only when reaching the right end,
   which is terminal.  Optimal return from the start is 1.0. *)

let corridor_env () =
  let pos = ref 0 in
  let n = 5 in
  let state () =
    Array.init n (fun i -> if i = !pos then 1.0 else 0.0)
  in
  {
    Rl.Dqn.reset =
      (fun () ->
        pos := 0;
        state ());
    step =
      (fun a ->
        (if a = 1 then incr pos else if !pos > 0 then decr pos);
        let terminal = !pos = n - 1 in
        (state (), (if terminal then 1.0 else 0.0), terminal));
  }

let test_dqn_learns_corridor () =
  let cfg =
    {
      Rl.Dqn.default_config with
      Rl.Dqn.state_dim = 5;
      num_actions = 2;
      hidden = [| 16 |];
      gamma = 0.9;
      lr = 5e-3;
      batch_size = 16;
      buffer_capacity = 2000;
      target_sync = 50;
      eps_decay_steps = 400;
      seed = 3;
    }
  in
  let agent = Rl.Dqn.create cfg in
  let env = corridor_env () in
  for _ = 1 to 150 do
    ignore (Rl.Dqn.run_episode agent env ~max_steps:30 ~learn:true)
  done;
  (* Greedy policy must walk straight to the goal: 4 steps, reward 1. *)
  let r = Rl.Dqn.run_episode agent env ~max_steps:6 ~learn:false in
  Alcotest.(check (float 1e-9)) "optimal return" 1.0 r;
  check_bool "trained" true (Rl.Dqn.training_steps agent > 0)

let test_dqn_weights_roundtrip () =
  let cfg =
    { Rl.Dqn.default_config with Rl.Dqn.state_dim = 3; num_actions = 2;
      hidden = [| 8 |] }
  in
  let a = Rl.Dqn.create cfg in
  let b = Rl.Dqn.create { cfg with Rl.Dqn.seed = 321 } in
  let s = [| 0.1; 0.5; -0.2 |] in
  check_bool "different" true (Rl.Dqn.q_values a s <> Rl.Dqn.q_values b s);
  Rl.Dqn.load_weights_string b (Rl.Dqn.save_string a);
  check_bool "restored" true (Rl.Dqn.q_values a s = Rl.Dqn.q_values b s)

let test_dqn_epsilon_respected () =
  (* With explore:false the policy is deterministic. *)
  let cfg =
    { Rl.Dqn.default_config with Rl.Dqn.state_dim = 2; num_actions = 3;
      hidden = [| 4 |] }
  in
  let agent = Rl.Dqn.create cfg in
  let s = [| 0.4; -0.1 |] in
  let a0 = Rl.Dqn.select_action agent s in
  for _ = 1 to 20 do
    check "greedy stable" a0 (Rl.Dqn.select_action agent s)
  done

let suite =
  [
    ("mlp shapes", `Quick, test_mlp_shapes);
    ("mlp training reduces loss", `Quick, test_mlp_gradient_check);
    ("mlp fits xor", `Quick, test_mlp_fits_xor);
    ("mlp copy/clone", `Quick, test_mlp_copy_and_clone);
    ("mlp save/load", `Quick, test_mlp_save_load);
    ("replay ring buffer", `Quick, test_replay_ring);
    ("replay empty sample", `Quick, test_replay_empty_sample);
    ("dqn learns corridor MDP", `Quick, test_dqn_learns_corridor);
    ("dqn weights roundtrip", `Quick, test_dqn_weights_roundtrip);
    ("dqn greedy is deterministic", `Quick, test_dqn_epsilon_respected);
  ]

let test_mlp_rejects_bad_shapes () =
  Alcotest.check_raises "too few sizes"
    (Invalid_argument "Mlp.create: need >= 2 sizes") (fun () ->
      ignore (Rl.Mlp.create ~sizes:[| 3 |] ~seed:1));
  Alcotest.check_raises "zero width"
    (Invalid_argument "Mlp.create: bad size") (fun () ->
      ignore (Rl.Mlp.create ~sizes:[| 3; 0; 2 |] ~seed:1));
  Alcotest.check_raises "copy shape mismatch"
    (Invalid_argument "Mlp.copy_weights: shape mismatch") (fun () ->
      let a = Rl.Mlp.create ~sizes:[| 2; 2 |] ~seed:1 in
      let b = Rl.Mlp.create ~sizes:[| 2; 3 |] ~seed:1 in
      Rl.Mlp.copy_weights ~src:a ~dst:b)

let test_mlp_train_empty_batch () =
  let net = Rl.Mlp.create ~sizes:[| 2; 2 |] ~seed:1 in
  Alcotest.(check (float 0.0)) "empty batch loss" 0.0
    (Rl.Mlp.train_batch net ~lr:0.01 [||])

let test_dqn_epsilon_annealing () =
  (* With explore:true and a broken-greedy setup, actions should still
     be legal; after decay_steps selections epsilon reaches eps_end. *)
  let cfg =
    { Rl.Dqn.default_config with
      Rl.Dqn.state_dim = 2; num_actions = 4; hidden = [| 4 |];
      eps_start = 1.0; eps_end = 0.0; eps_decay_steps = 50 }
  in
  let agent = Rl.Dqn.create cfg in
  let s = [| 0.0; 1.0 |] in
  for _ = 1 to 200 do
    let a = Rl.Dqn.select_action agent ~explore:true s in
    check_bool "action in range" true (a >= 0 && a < 4)
  done;
  (* After decay, greedy must be stable again. *)
  let a0 = Rl.Dqn.select_action agent s in
  for _ = 1 to 10 do
    check "greedy after decay" a0 (Rl.Dqn.select_action agent s)
  done

let test_mlp_save_load_exact () =
  (* Hex-float serialization must round-trip bit-for-bit: the reloaded
     net re-serializes to the identical string and its forward pass is
     bitwise equal, including after training perturbs the weights. *)
  let a = Rl.Mlp.create ~sizes:[| 4; 9; 5 |] ~seed:7 in
  for i = 1 to 50 do
    ignore
      (Rl.Mlp.train_batch a ~lr:1e-2
         [| ([| float i; 0.3; -1.7; 0.01 |], i mod 5, sin (float i)) |])
  done;
  let s = Rl.Mlp.save_string a in
  let b = Rl.Mlp.load_string s in
  check_bool "re-serialization identical" true (Rl.Mlp.save_string b = s);
  let x = [| 0.123; -4.56; 7.89; -0.001 |] in
  check_bool "forward bitwise equal" true
    (Rl.Mlp.forward a x = Rl.Mlp.forward b x)

let test_mlp_finite_difference_gradients () =
  (* Central finite differences on a handful of coordinates must match
     the analytic backward pass.  Inputs and targets keep every ReLU
     pre-activation away from 0, so the loss is smooth at the probe. *)
  let net = Rl.Mlp.create ~sizes:[| 3; 6; 4 |] ~seed:23 in
  let batch =
    [|
      ([| 0.8; -0.4; 1.3 |], 0, 0.9);
      ([| -1.1; 0.6; 0.2 |], 2, -0.5);
      ([| 0.3; 0.9; -0.7 |], 3, 1.4);
    |]
  in
  let _, _, loss = Rl.Mlp.gradients net batch in
  Alcotest.(check (float 1e-12))
    "gradients' loss matches loss_batch" (Rl.Mlp.loss_batch net batch) loss;
  let grads_w, grads_b, _ = Rl.Mlp.gradients net batch in
  let eps = 1e-5 in
  let probe_weight layer out idx =
    Rl.Mlp.nudge_weight net ~layer ~out ~idx eps;
    let up = Rl.Mlp.loss_batch net batch in
    Rl.Mlp.nudge_weight net ~layer ~out ~idx (-2.0 *. eps);
    let dn = Rl.Mlp.loss_batch net batch in
    Rl.Mlp.nudge_weight net ~layer ~out ~idx eps;
    let numeric = (up -. dn) /. (2.0 *. eps) in
    let analytic = grads_w.(layer).(out).(idx) in
    let scale = Float.max 1.0 (Float.abs numeric) in
    check_bool
      (Printf.sprintf "dW[%d][%d][%d]: %.8g vs %.8g" layer out idx numeric
         analytic)
      true
      (Float.abs (numeric -. analytic) /. scale < 1e-6)
  in
  let probe_bias layer out =
    Rl.Mlp.nudge_bias net ~layer ~out eps;
    let up = Rl.Mlp.loss_batch net batch in
    Rl.Mlp.nudge_bias net ~layer ~out (-2.0 *. eps);
    let dn = Rl.Mlp.loss_batch net batch in
    Rl.Mlp.nudge_bias net ~layer ~out eps;
    let numeric = (up -. dn) /. (2.0 *. eps) in
    let analytic = grads_b.(layer).(out) in
    let scale = Float.max 1.0 (Float.abs numeric) in
    check_bool
      (Printf.sprintf "dB[%d][%d]: %.8g vs %.8g" layer out numeric analytic)
      true
      (Float.abs (numeric -. analytic) /. scale < 1e-6)
  in
  for out = 0 to 5 do
    probe_weight 0 out 0;
    probe_weight 0 out 2;
    probe_bias 0 out
  done;
  for out = 0 to 3 do
    probe_weight 1 out 1;
    probe_weight 1 out 5;
    probe_bias 1 out
  done

let test_dqn_concurrent_domains () =
  (* One shared agent hammered from several domains: selection,
     observation/training and serialization must never tear or raise.
     The mutex audit this guards is Dqn's [locked] wrapper. *)
  let cfg =
    { Rl.Dqn.default_config with
      Rl.Dqn.state_dim = 4; num_actions = 3; hidden = [| 8 |];
      batch_size = 8; buffer_capacity = 256; target_sync = 20;
      eps_decay_steps = 100; seed = 9 }
  in
  let agent = Rl.Dqn.create cfg in
  let errors = Atomic.make 0 in
  let worker k () =
    try
      for i = 1 to 200 do
        let s = Array.init 4 (fun j -> float ((i + j + k) mod 7) /. 7.0) in
        let a = Rl.Dqn.select_action agent ~explore:(k mod 2 = 0) s in
        if a < 0 || a >= 3 then Atomic.incr errors;
        Rl.Dqn.observe agent
          { Rl.Replay.state = s; action = a; reward = float (i mod 3);
            next_state = (if i mod 5 = 0 then None else Some s) };
        if i mod 50 = 0 then ignore (Rl.Dqn.save_string agent);
        ignore (Rl.Dqn.q_values agent s);
        ignore (Rl.Dqn.last_loss agent)
      done
    with _ -> Atomic.incr errors
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  check "no concurrent errors" 0 (Atomic.get errors);
  check_bool "trained under contention" true (Rl.Dqn.training_steps agent > 0)

let test_mlp_concurrent_readers () =
  (* Inference on a frozen net is lock-free and must be deterministic
     across domains (the dispatch engine calls Policy.decide — Mlp
     forward — from every worker). *)
  let net = Rl.Mlp.create ~sizes:[| 5; 12; 6 |] ~seed:31 in
  let x = [| 0.2; -0.4; 0.8; -1.6; 3.2 |] in
  let expect = Rl.Mlp.forward net x in
  let mismatches = Atomic.make 0 in
  let reader () =
    for _ = 1 to 500 do
      if Rl.Mlp.forward net x <> expect then Atomic.incr mismatches
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn reader) in
  List.iter Domain.join domains;
  check "deterministic across domains" 0 (Atomic.get mismatches)

let suite =
  suite
  @ [
      ("mlp rejects bad shapes", `Quick, test_mlp_rejects_bad_shapes);
      ("mlp empty batch", `Quick, test_mlp_train_empty_batch);
      ("dqn epsilon annealing", `Quick, test_dqn_epsilon_annealing);
      ("mlp save/load bit-exact", `Quick, test_mlp_save_load_exact);
      ("mlp finite-difference gradient check", `Quick,
       test_mlp_finite_difference_gradients);
      ("dqn shared across domains", `Quick, test_dqn_concurrent_domains);
      ("mlp concurrent readers agree", `Quick, test_mlp_concurrent_readers);
    ]
