(* Tests for the CNF substrate: formulas, DIMACS, Tseitin, cnf2aig. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Brute-force satisfiability by enumeration (small formulas only). *)
let brute_force f =
  let n = f.Cnf.Formula.num_vars in
  assert (n <= 20);
  let rec try_assignment m =
    if m >= 1 lsl n then None
    else
      let a = Array.init n (fun i -> m land (1 lsl i) <> 0) in
      if Cnf.Formula.eval f a then Some a else try_assignment (m + 1)
  in
  try_assignment 0

let test_formula_basics () =
  let f = Cnf.Formula.create ~num_vars:3 [ [| 1; -2 |]; [| 2; 3 |] ] in
  check "vars" 3 f.Cnf.Formula.num_vars;
  check "clauses" 2 (Cnf.Formula.num_clauses f);
  check "lits" 4 (Cnf.Formula.num_literals f);
  check_bool "eval sat" true (Cnf.Formula.eval f [| true; false; true |]);
  check_bool "eval unsat" false (Cnf.Formula.eval f [| false; true; false |]);
  check_bool "not trivially unsat" false (Cnf.Formula.is_trivially_unsat f);
  let g = Cnf.Formula.add_clauses f [ [||] ] in
  check_bool "empty clause detected" true (Cnf.Formula.is_trivially_unsat g)

let test_formula_validation () =
  Alcotest.check_raises "zero literal"
    (Invalid_argument "Formula: literal 0 out of range (1..2)") (fun () ->
      ignore (Cnf.Formula.create ~num_vars:2 [ [| 0 |] ]));
  Alcotest.check_raises "overflow literal"
    (Invalid_argument "Formula: literal 5 out of range (1..2)") (fun () ->
      ignore (Cnf.Formula.create ~num_vars:2 [ [| 5 |] ]))

let test_dimacs_roundtrip () =
  let f =
    Cnf.Formula.create ~num_vars:4 [ [| 1; -2; 3 |]; [| -4 |]; [| 2; 4 |] ]
  in
  let f' = Cnf.Dimacs.read_string (Cnf.Dimacs.write_string f) in
  check "vars" 4 f'.Cnf.Formula.num_vars;
  check "clauses" 3 (Cnf.Formula.num_clauses f');
  Alcotest.(check (array (array int)))
    "clause content" f.Cnf.Formula.clauses f'.Cnf.Formula.clauses

let test_dimacs_comments_and_layout () =
  let f =
    Cnf.Dimacs.read_string
      "c a comment\np cnf 3 2\nc another\n1 -2\n0\n2 3 0\n"
  in
  check "clauses" 2 (Cnf.Formula.num_clauses f);
  Alcotest.(check (array int)) "multi-line clause" [| 1; -2 |]
    f.Cnf.Formula.clauses.(0)

let test_dimacs_errors () =
  let expect_error s =
    try
      ignore (Cnf.Dimacs.read_string s);
      Alcotest.failf "expected parse error on %S" s
    with Cnf.Dimacs.Parse_error _ -> ()
  in
  expect_error "";
  expect_error "p cnf 2 1\n1 2\n";
  (* unterminated *)
  expect_error "p cnf 2 2\n1 0\n";
  (* count mismatch *)
  expect_error "p cnf 1 1\n7 0\n" (* out of range *)

(* ------------------------------------------------------------------ *)
(* Tseitin *)

let xor_graph () =
  let g = Aig.Graph.create ~num_pis:2 in
  let a = Aig.Graph.pi g 0 and b = Aig.Graph.pi g 1 in
  Aig.Graph.add_po g (Aig.Graph.xor_ g a b);
  g

let test_tseitin_xor () =
  let g = xor_graph () in
  let enc = Cnf.Tseitin.encode g in
  (* Satisfiable exactly on the two assignments with a <> b.  Check by
     brute force. *)
  (match brute_force enc.Cnf.Tseitin.formula with
   | None -> Alcotest.fail "xor=1 should be satisfiable"
   | Some m -> check_bool "a<>b" true (m.(0) <> m.(1)));
  (* Count satisfying input projections over all models. *)
  let f = enc.Cnf.Tseitin.formula in
  let n = f.Cnf.Formula.num_vars in
  let sat_inputs = Hashtbl.create 4 in
  for m = 0 to (1 lsl n) - 1 do
    let a = Array.init n (fun i -> m land (1 lsl i) <> 0) in
    if Cnf.Formula.eval f a then Hashtbl.replace sat_inputs (a.(0), a.(1)) ()
  done;
  check "two satisfying inputs" 2 (Hashtbl.length sat_inputs);
  check_bool "correct inputs" true
    (Hashtbl.mem sat_inputs (true, false) && Hashtbl.mem sat_inputs (false, true))

let test_tseitin_consistency_random () =
  (* For random circuits, any total assignment satisfying the clauses
     (ignoring output units) must agree with simulation. *)
  let rng = Aig.Rng.create 5 in
  for _trial = 1 to 20 do
    let g = Aig.Graph.create ~num_pis:4 in
    let lits = ref (Array.to_list (Array.init 4 (Aig.Graph.pi g))) in
    for _ = 1 to 12 do
      let arr = Array.of_list !lits in
      let a = arr.(Aig.Rng.int rng (Array.length arr))
      and b = arr.(Aig.Rng.int rng (Array.length arr)) in
      lits :=
        Aig.Graph.and_ g
          (Aig.Graph.lit_not_cond a (Aig.Rng.bool rng))
          (Aig.Graph.lit_not_cond b (Aig.Rng.bool rng))
        :: !lits
    done;
    (match !lits with l :: _ -> Aig.Graph.add_po g l | [] -> assert false);
    let enc = Cnf.Tseitin.encode ~assert_outputs:true g in
    match brute_force enc.Cnf.Tseitin.formula with
    | None ->
      (* Output must be constant false over all inputs. *)
      for m = 0 to 15 do
        let ins = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
        check_bool "really unsat" false (Aig.Sim.eval g ins).(0)
      done
    | Some model ->
      let ins = Array.init 4 (fun i -> model.(i)) in
      check_bool "model drives output" true (Aig.Sim.eval g ins).(0)
  done

let test_tseitin_constant_outputs () =
  let g = Aig.Graph.create ~num_pis:1 in
  Aig.Graph.add_po g Aig.Graph.const_true;
  let enc = Cnf.Tseitin.encode g in
  check_bool "const true sat" true
    (Option.is_some (brute_force enc.Cnf.Tseitin.formula));
  let g = Aig.Graph.create ~num_pis:1 in
  Aig.Graph.add_po g Aig.Graph.const_false;
  let enc = Cnf.Tseitin.encode g in
  check_bool "const false unsat" true
    (Cnf.Formula.is_trivially_unsat enc.Cnf.Tseitin.formula)

(* ------------------------------------------------------------------ *)
(* cnf2aig *)

let test_cnf2aig_recovers_tseitin () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  Aig.Graph.add_po g (Aig.Graph.and_ g (Aig.Graph.xor_ g a b) c);
  let enc = Cnf.Tseitin.encode g in
  let r = Cnf.Cnf2aig.run enc.Cnf.Tseitin.formula in
  check_bool "gates found" true (r.Cnf.Cnf2aig.gates_recovered > 0);
  check_bool "clauses absorbed" true (r.Cnf.Cnf2aig.clauses_absorbed > 0);
  (* Equisatisfiability: the recovered circuit's output must be
     drivable to 1 exactly when the CNF is satisfiable (here: yes), and
     satisfying inputs must match. *)
  let g' = r.Cnf.Cnf2aig.graph in
  let enc' = Cnf.Tseitin.encode g' in
  match brute_force enc'.Cnf.Tseitin.formula with
  | None -> Alcotest.fail "recovered circuit should be satisfiable"
  | Some _ -> ()

let test_cnf2aig_pure_constraints () =
  (* A raw CNF with no gate structure: every clause becomes a
     constraint cone and every variable a PI. *)
  let f =
    Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |]; [| -2; -3 |] ]
  in
  let r = Cnf.Cnf2aig.run f in
  check "no gates" 0 r.Cnf.Cnf2aig.gates_recovered;
  check "pis = vars" 3 (Aig.Graph.num_pis r.Cnf.Cnf2aig.graph);
  (* Circuit output on assignment = formula evaluation. *)
  for m = 0 to 7 do
    let a = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
    check_bool "agrees with eval" (Cnf.Formula.eval f a)
      (Aig.Sim.eval r.Cnf.Cnf2aig.graph a).(0)
  done

let test_cnf2aig_equisat_random =
  QCheck.Test.make ~name:"cnf2aig: equisatisfiable on random CNFs" ~count:60
    QCheck.(triple (int_bound 1000000) (int_range 3 8) (int_range 3 14))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + Aig.Rng.int rng 3 in
            Array.init len (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = Cnf.Formula.create ~num_vars:nvars clauses in
      let r = Cnf.Cnf2aig.run f in
      let enc = Cnf.Tseitin.encode r.Cnf.Cnf2aig.graph in
      let orig_sat = Option.is_some (brute_force f) in
      (* The recovered circuit's encoding can exceed brute-force reach
         (OR cones add auxiliaries), so use the CDCL solver here. *)
      let recovered_sat =
        match fst (Sat.Solver.solve enc.Cnf.Tseitin.formula) with
        | Sat.Solver.Sat _ -> true
        | Sat.Solver.Unsat -> false
        | Sat.Solver.Unknown -> not orig_sat (* force a failure *)
      in
      orig_sat = recovered_sat)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let suite =
  [
    ("formula basics", `Quick, test_formula_basics);
    ("formula validation", `Quick, test_formula_validation);
    ("dimacs roundtrip", `Quick, test_dimacs_roundtrip);
    ("dimacs comments", `Quick, test_dimacs_comments_and_layout);
    ("dimacs errors", `Quick, test_dimacs_errors);
    ("tseitin xor", `Quick, test_tseitin_xor);
    ("tseitin random consistency", `Quick, test_tseitin_consistency_random);
    ("tseitin constant outputs", `Quick, test_tseitin_constant_outputs);
    ("cnf2aig recovers tseitin gates", `Quick, test_cnf2aig_recovers_tseitin);
    ("cnf2aig pure constraints", `Quick, test_cnf2aig_pure_constraints);
  ]
  @ qsuite [ test_cnf2aig_equisat_random ]

(* ------------------------------------------------------------------ *)
(* Advanced cnf2aig (§4.6 future work: order-independent recovery) *)

let shuffle_vars ~seed f =
  let rng = Aig.Rng.create seed in
  let n = f.Cnf.Formula.num_vars in
  let perm = Array.init n (fun i -> i + 1) in
  Aig.Rng.shuffle rng perm;
  Cnf.Formula.map_vars f ~f:(fun v -> perm.(v - 1)) ~num_vars:n

let test_cnf2aig_advanced_survives_renumbering () =
  let g = Aig.Graph.create ~num_pis:3 in
  let a = Aig.Graph.pi g 0
  and b = Aig.Graph.pi g 1
  and c = Aig.Graph.pi g 2 in
  Aig.Graph.add_po g (Aig.Graph.and_ g (Aig.Graph.xor_ g a b) c);
  let enc = Cnf.Tseitin.encode g in
  (* Reverse the variable numbering: gate outputs now have SMALLER
     indices than their inputs, defeating the basic heuristic. *)
  let n = enc.Cnf.Tseitin.formula.Cnf.Formula.num_vars in
  let reversed =
    Cnf.Formula.map_vars enc.Cnf.Tseitin.formula
      ~f:(fun v -> n + 1 - v)
      ~num_vars:n
  in
  let basic = Cnf.Cnf2aig.run reversed in
  let adv = Cnf.Cnf2aig.run ~advanced:true reversed in
  check_bool "advanced recovers more gates" true
    (adv.Cnf.Cnf2aig.gates_recovered > basic.Cnf.Cnf2aig.gates_recovered);
  check_bool "advanced finds all gates" true
    (adv.Cnf.Cnf2aig.gates_recovered >= 2)

let test_cnf2aig_advanced_equisat =
  QCheck.Test.make ~name:"cnf2aig advanced: equisatisfiable after shuffling"
    ~count:60
    QCheck.(triple (int_bound 1000000) (int_range 3 7) (int_range 3 12))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + Aig.Rng.int rng 3 in
            Array.init len (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = shuffle_vars ~seed (Cnf.Formula.create ~num_vars:nvars clauses) in
      let r = Cnf.Cnf2aig.run ~advanced:true f in
      let enc = Cnf.Tseitin.encode r.Cnf.Cnf2aig.graph in
      let orig_sat = Option.is_some (brute_force f) in
      let recovered_sat =
        match fst (Sat.Solver.solve enc.Cnf.Tseitin.formula) with
        | Sat.Solver.Sat _ -> true
        | Sat.Solver.Unsat -> false
        | Sat.Solver.Unknown -> not orig_sat
      in
      orig_sat = recovered_sat)

let test_cnf2aig_advanced_tseitin_roundtrip =
  QCheck.Test.make
    ~name:"cnf2aig advanced: recovers shuffled Tseitin circuits fully"
    ~count:40 (QCheck.int_bound 1000000) (fun seed ->
      let rng = Aig.Rng.create seed in
      let g = Aig.Graph.create ~num_pis:4 in
      let lits = ref (Array.to_list (Array.init 4 (Aig.Graph.pi g))) in
      for _ = 1 to 10 do
        let arr = Array.of_list !lits in
        let pick () =
          Aig.Graph.lit_not_cond
            arr.(Aig.Rng.int rng (Array.length arr))
            (Aig.Rng.bool rng)
        in
        lits := Aig.Graph.and_ g (pick ()) (pick ()) :: !lits
      done;
      (match !lits with l :: _ -> Aig.Graph.add_po g l | [] -> assert false);
      let f =
        shuffle_vars ~seed:(seed + 1)
          (Cnf.Tseitin.encode g).Cnf.Tseitin.formula
      in
      (* The greedy advanced selector may occasionally sacrifice a gate
         when overlapping candidates conflict, but it must never do
         worse than the variable-order heuristic on shuffled input. *)
      let basic = Cnf.Cnf2aig.run f in
      let adv = Cnf.Cnf2aig.run ~advanced:true f in
      adv.Cnf.Cnf2aig.gates_recovered >= basic.Cnf.Cnf2aig.gates_recovered
      (* When the PO cone really contains gates (>= 3 Tseitin clauses
         plus the output unit), the advanced mode must find some. *)
      && (Cnf.Formula.num_clauses f < 4
          || adv.Cnf.Cnf2aig.gates_recovered > 0))

let suite =
  suite
  @ [
      ("cnf2aig advanced survives renumbering", `Quick,
       test_cnf2aig_advanced_survives_renumbering);
    ]
  @ qsuite
      [ test_cnf2aig_advanced_equisat; test_cnf2aig_advanced_tseitin_roundtrip ]

(* ------------------------------------------------------------------ *)
(* CNF-level preprocessing (SatELite-style) *)

let test_simplify_units_and_pures () =
  (* x1 unit forces x2 via (x1 -> x2); x3 appears only positively. *)
  let f =
    Cnf.Formula.create ~num_vars:3 [ [| 1 |]; [| -1; 2 |]; [| 3; 2 |] ]
  in
  match Cnf.Simplify.run f with
  | Cnf.Simplify.Proved_unsat -> Alcotest.fail "satisfiable"
  | Cnf.Simplify.Simplified s ->
    let f' = Cnf.Simplify.formula s in
    check "everything removed" 0 (Cnf.Formula.num_clauses f');
    (* Reconstruction must produce a model of the original. *)
    let m = Cnf.Simplify.reconstruct s [| false; false; false |] in
    check_bool "reconstructed model valid" true (Cnf.Formula.eval f m)

let test_simplify_detects_unsat () =
  let f = Cnf.Formula.create ~num_vars:1 [ [| 1 |]; [| -1 |] ] in
  (match Cnf.Simplify.run f with
   | Cnf.Simplify.Proved_unsat -> ()
   | Cnf.Simplify.Simplified _ -> Alcotest.fail "should refute by UP");
  let f = Cnf.Formula.create ~num_vars:2 [ [||] ] in
  match Cnf.Simplify.run f with
  | Cnf.Simplify.Proved_unsat -> ()
  | Cnf.Simplify.Simplified _ -> Alcotest.fail "empty clause"

let test_simplify_subsumption () =
  (* (1 2) subsumes (1 2 3); disable BVE-ish effects by keeping vars in
     many clauses. *)
  let f =
    Cnf.Formula.create ~num_vars:3
      [ [| 1; 2 |]; [| 1; 2; 3 |]; [| -1; -2 |]; [| -1; 2; -3 |];
        [| 1; -2; 3 |]; [| -1; 2; 3 |] ]
  in
  match Cnf.Simplify.run ~config:{ Cnf.Simplify.default_config with
                                   Cnf.Simplify.rounds = 1 } f with
  | Cnf.Simplify.Proved_unsat -> Alcotest.fail "satisfiable"
  | Cnf.Simplify.Simplified s ->
    let f' = Cnf.Simplify.formula s in
    check_bool "clause count reduced" true
      (Cnf.Formula.num_clauses f' < Cnf.Formula.num_clauses f)

let prop_simplify_equisat_and_reconstruct =
  QCheck.Test.make
    ~name:"simplify: equisatisfiable, models reconstruct" ~count:300
    QCheck.(triple (int_bound 10000000) (int_range 2 10) (int_range 1 35))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + Aig.Rng.int rng 4 in
            Array.init len (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = Cnf.Formula.create ~num_vars:nvars clauses in
      let orig_sat = Option.is_some (brute_force f) in
      match Cnf.Simplify.run f with
      | Cnf.Simplify.Proved_unsat -> not orig_sat
      | Cnf.Simplify.Simplified s -> (
        let f' = Cnf.Simplify.formula s in
        match fst (Sat.Solver.solve f') with
        | Sat.Solver.Sat m ->
          orig_sat && Cnf.Formula.eval f (Cnf.Simplify.reconstruct s m)
        | Sat.Solver.Unsat -> not orig_sat
        | Sat.Solver.Unknown -> false))

(* php(4,3) built inline (test_cnf must not depend on workloads). *)
let inline_php43 () =
  let v p h = (p * 3) + h + 1 in
  let at_least = List.init 4 (fun p -> Array.init 3 (fun h -> v p h)) in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [| -v p1 h; -v p2 h |] else None)
              (List.init 4 Fun.id))
          (List.init 4 Fun.id))
      (List.init 3 Fun.id)
  in
  Cnf.Formula.create ~num_vars:12 (at_least @ at_most)

let test_simplify_php_shrinks () =
  (* BVE + subsumption must not blow the instance up. *)
  let f = inline_php43 () in
  match Cnf.Simplify.run f with
  | Cnf.Simplify.Proved_unsat -> ()
  | Cnf.Simplify.Simplified s ->
    check_bool "literals not increased" true
      (Cnf.Formula.num_literals (Cnf.Simplify.formula s)
       <= Cnf.Formula.num_literals f)

(* --- proof-carrying simplification ------------------------------- *)

let prop_simplify_proof_differential =
  (* Differential fuzz of the full chain: simplify (logging) -> solve
     (logging into the same recorder) -> reconstruct.  UNSAT cases must
     leave one sealed DRAT stream that checks against the ORIGINAL
     formula; SAT models must lift back and satisfy it. *)
  QCheck.Test.make
    ~name:"simplify+solve: one DRAT stream, checked against the original"
    ~count:300
    QCheck.(triple (int_bound 10000000) (int_range 3 12) (int_range 2 45))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun i ->
            (* A sprinkle of unit clauses exercises the unit-assignment
               shrink/delete logging; short clauses over few variables
               drive BVE and the pure-literal rule. *)
            let len = if i mod 7 = 0 then 1 else 1 + Aig.Rng.int rng 3 in
            Array.init len (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = Cnf.Formula.create ~num_vars:nvars clauses in
      let proof = Sat.Proof.create () in
      match Cnf.Simplify.run ~proof f with
      | Cnf.Simplify.Proved_unsat ->
        Sat.Proof.sealed proof && Sat.Proof.check f proof
      | Cnf.Simplify.Simplified s -> (
        match fst (Sat.Solver.solve ~proof (Cnf.Simplify.formula s)) with
        | Sat.Solver.Sat m ->
          Cnf.Formula.eval f (Cnf.Simplify.reconstruct s m)
        | Sat.Solver.Unsat ->
          Sat.Proof.sealed proof && Sat.Proof.check f proof
        | Sat.Solver.Unknown -> false))

let test_simplify_proof_unit_chain () =
  (* Refuted by unit propagation alone: every clause is rewritten by
     unit assignment, so the two-phase Add/Delete ordering is what
     keeps the stream checkable. *)
  let f =
    Cnf.Formula.create ~num_vars:4
      [ [| 1 |]; [| -1; 2 |]; [| -2; 3 |]; [| -3; 4 |]; [| -4; -1 |] ]
  in
  let proof = Sat.Proof.create () in
  (match Cnf.Simplify.run ~proof f with
   | Cnf.Simplify.Proved_unsat -> ()
   | Cnf.Simplify.Simplified _ -> Alcotest.fail "unit chain should refute");
  check_bool "sealed by the empty clause" true (Sat.Proof.sealed proof);
  check_bool "unit-only proof checks" true (Sat.Proof.check f proof)

let test_simplify_proof_php () =
  (* Pure literals + BVE fire on php(4,3); the solver finishes the
     refutation.  The combined stream must check against the
     pre-simplification formula. *)
  let f = inline_php43 () in
  let proof = Sat.Proof.create () in
  (match Cnf.Simplify.run ~proof f with
   | Cnf.Simplify.Proved_unsat -> ()
   | Cnf.Simplify.Simplified s -> (
     match fst (Sat.Solver.solve ~proof (Cnf.Simplify.formula s)) with
     | Sat.Solver.Unsat -> ()
     | _ -> Alcotest.fail "php(4,3) is unsat"));
  check_bool "proof sealed" true (Sat.Proof.sealed proof);
  check_bool "combined proof checks against original" true
    (Sat.Proof.check f proof)

let suite =
  suite
  @ [
      ("simplify units and pures", `Quick, test_simplify_units_and_pures);
      ("simplify detects unsat", `Quick, test_simplify_detects_unsat);
      ("simplify subsumption", `Quick, test_simplify_subsumption);
      ("simplify php", `Quick, test_simplify_php_shrinks);
      ("simplify proof: unit-only refutation", `Quick,
       test_simplify_proof_unit_chain);
      ("simplify proof: pures+BVE then solver", `Quick,
       test_simplify_proof_php);
    ]
  @ qsuite
      [ prop_simplify_equisat_and_reconstruct;
        prop_simplify_proof_differential ]

(* ------------------------------------------------------------------ *)
(* Plaisted-Greenbaum encoding *)

let test_pg_smaller_and_equisat =
  QCheck.Test.make
    ~name:"tseitin: Plaisted-Greenbaum is smaller and equisatisfiable"
    ~count:100 (QCheck.int_bound 1000000) (fun seed ->
      let rng = Aig.Rng.create seed in
      let g = Aig.Graph.create ~num_pis:4 in
      let lits = ref (Array.to_list (Array.init 4 (Aig.Graph.pi g))) in
      for _ = 1 to 14 do
        let arr = Array.of_list !lits in
        let pick () =
          Aig.Graph.lit_not_cond
            arr.(Aig.Rng.int rng (Array.length arr))
            (Aig.Rng.bool rng)
        in
        lits := Aig.Graph.and_ g (pick ()) (pick ()) :: !lits
      done;
      (match !lits with
       | x :: _ -> Aig.Graph.add_po g x
       | [] -> assert false);
      let full = (Cnf.Tseitin.encode g).Cnf.Tseitin.formula in
      let pg =
        (Cnf.Tseitin.encode ~plaisted_greenbaum:true g).Cnf.Tseitin.formula
      in
      Cnf.Formula.num_clauses pg <= Cnf.Formula.num_clauses full
      &&
      let sat_full =
        match fst (Sat.Solver.solve full) with
        | Sat.Solver.Sat _ -> true
        | _ -> false
      in
      match fst (Sat.Solver.solve pg) with
      | Sat.Solver.Sat m ->
        (* The input projection of a PG model must drive the output. *)
        sat_full
        && (Aig.Sim.eval g (Array.init 4 (fun i -> m.(i)))).(0)
      | Sat.Solver.Unsat -> not sat_full
      | Sat.Solver.Unknown -> false)

let test_pg_drops_onset_clauses () =
  (* A single AND output: the (o | ~a | ~b) clause is unnecessary. *)
  let g = Aig.Graph.create ~num_pis:2 in
  Aig.Graph.add_po g (Aig.Graph.and_ g (Aig.Graph.pi g 0) (Aig.Graph.pi g 1));
  let full = (Cnf.Tseitin.encode g).Cnf.Tseitin.formula in
  let pg =
    (Cnf.Tseitin.encode ~plaisted_greenbaum:true g).Cnf.Tseitin.formula
  in
  check "full has 4 clauses" 4 (Cnf.Formula.num_clauses full);
  check "pg has 3 clauses" 3 (Cnf.Formula.num_clauses pg)

let suite =
  suite
  @ [ ("pg drops one-sided clauses", `Quick, test_pg_drops_onset_clauses) ]
  @ qsuite [ test_pg_smaller_and_equisat ]

(* --- Fingerprint: canonical-form invariance and collision smoke ------ *)

let fp = Cnf.Fingerprint.of_formula

let test_fingerprint_invariance () =
  let a =
    Cnf.Formula.create ~num_vars:4 [ [| 1; -2; 3 |]; [| -4 |]; [| 2; 4 |] ]
  in
  (* Clause order, literal order within a clause, duplicated literals
     and duplicated clauses all wash out in the canonical form. *)
  let b =
    Cnf.Formula.create ~num_vars:4
      [ [| 2; 4 |]; [| 3; 1; -2; 1 |]; [| -4; -4 |]; [| 2; 4 |] ]
  in
  check_bool "canonically equal" true (Cnf.Fingerprint.equal (fp a) (fp b));
  check "compare" 0 (Cnf.Fingerprint.compare (fp a) (fp b));
  check "hash" (Cnf.Fingerprint.hash (fp a)) (Cnf.Fingerprint.hash (fp b));
  Alcotest.(check string)
    "hex" (Cnf.Fingerprint.to_hex (fp a)) (Cnf.Fingerprint.to_hex (fp b));
  check "hex width" 32 (String.length (Cnf.Fingerprint.to_hex (fp a)))

let test_fingerprint_tautologies_dropped () =
  let a = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |] ] in
  let b = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| 3; -3; 1 |] ] in
  check_bool "tautology invisible" true
    (Cnf.Fingerprint.equal (fp a) (fp b))

let test_fingerprint_distinguishes () =
  let a = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |] ] in
  (* Same clauses, different variable universe: models differ, so the
     fingerprint must too. *)
  let b = Cnf.Formula.create ~num_vars:4 [ [| 1; 2 |] ] in
  let c = Cnf.Formula.create ~num_vars:3 [ [| 1; -2 |] ] in
  check_bool "num_vars matters" false (Cnf.Fingerprint.equal (fp a) (fp b));
  check_bool "polarity matters" false (Cnf.Fingerprint.equal (fp a) (fp c))

let test_fingerprint_collision_smoke () =
  (* Hash a few thousand structurally distinct formulas and demand
     zero collisions across the 128-bit pair. *)
  let rng = Aig.Rng.create 20260806 in
  let tbl = Hashtbl.create 4096 in
  let canon = Hashtbl.create 4096 in
  for i = 0 to 2999 do
    let nvars = 3 + Aig.Rng.int rng 12 in
    let clauses =
      List.init
        (1 + Aig.Rng.int rng 9)
        (fun _ ->
          Array.init
            (1 + Aig.Rng.int rng 4)
            (fun _ ->
              let v = 1 + Aig.Rng.int rng nvars in
              if Aig.Rng.bool rng then v else -v))
    in
    let f = Cnf.Formula.create ~num_vars:nvars clauses in
    (* Canonical key mirroring the fingerprint's normal form, so
       canonically-equal duplicates are expected hash-equal. *)
    let key =
      ( nvars,
        List.sort_uniq compare
          (List.filter_map
             (fun c ->
               let l = List.sort_uniq compare (Array.to_list c) in
               if List.exists (fun x -> List.mem (-x) l) l then None
               else Some l)
             clauses) )
    in
    let h = fp f in
    (match Hashtbl.find_opt tbl h with
     | Some k when k <> key ->
       Alcotest.failf "collision at case %d: %s" i (Cnf.Fingerprint.to_hex h)
     | _ -> ());
    Hashtbl.replace tbl h key;
    Hashtbl.replace canon key h
  done;
  check "distinct fingerprints = distinct canonical forms"
    (Hashtbl.length canon) (Hashtbl.length tbl)

let suite =
  suite
  @ [
      ("fingerprint invariance", `Quick, test_fingerprint_invariance);
      ("fingerprint drops tautologies", `Quick,
       test_fingerprint_tautologies_dropped);
      ("fingerprint distinguishes", `Quick, test_fingerprint_distinguishes);
      ("fingerprint collision smoke", `Quick,
       test_fingerprint_collision_smoke);
    ]

(* --- Flat CSR store and the zero-copy DIMACS parser ------------------ *)

let test_flat_roundtrip () =
  let f =
    Cnf.Formula.create ~num_vars:4
      [ [| 1; -2; 3 |]; [| -4 |]; [||]; [| 2; 4 |] ]
  in
  let fl = Cnf.Flat.of_formula f in
  check "vars" 4 (fl.Cnf.Flat.num_vars);
  check "clauses" 4 (Cnf.Flat.num_clauses fl);
  check "lits" 6 (Cnf.Flat.num_literals fl);
  check "clause sizes" 0 (Cnf.Flat.clause_size fl 2);
  let f' = Cnf.Flat.to_formula fl in
  Alcotest.(check (array (array int)))
    "round-trips clause-exact" f.Cnf.Formula.clauses f'.Cnf.Formula.clauses;
  (* eval agrees with the Formula view on every assignment of 4 vars *)
  for m = 0 to 15 do
    let a = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
    check_bool "eval agrees" (Cnf.Formula.eval f a) (Cnf.Flat.eval fl a)
  done

(* Legacy string reader vs. the flat cursor parser: identical formulas
   on every accepted input, identical exceptions (constructor AND
   message) on every rejected one. *)
let flat_vs_legacy s =
  let legacy =
    match Cnf.Dimacs.read_string s with
    | f -> Ok f
    | exception Cnf.Dimacs.Parse_error m -> Error m
  in
  let flat =
    match Cnf.Dimacs.read_flat_string s with
    | fl -> Ok (Cnf.Flat.to_formula fl)
    | exception Cnf.Dimacs.Parse_error m -> Error m
  in
  match (legacy, flat) with
  | Error a, Error b ->
    Alcotest.(check string) ("error text for " ^ String.escaped s) a b
  | Ok a, Ok b ->
    check ("num_vars for " ^ String.escaped s) a.Cnf.Formula.num_vars
      b.Cnf.Formula.num_vars;
    Alcotest.(check (array (array int)))
      ("clauses for " ^ String.escaped s)
      a.Cnf.Formula.clauses b.Cnf.Formula.clauses
  | Ok _, Error m ->
    Alcotest.failf "flat rejected %S (%s), legacy accepted" s m
  | Error m, Ok _ ->
    Alcotest.failf "legacy rejected %S (%s), flat accepted" s m

let test_flat_parser_edge_cases () =
  List.iter flat_vs_legacy
    [
      (* accepted layouts *)
      "p cnf 3 2\n1 -2\n0\n2 3 0\n";
      "c head\np cnf 2 1\nc mid\n1 2 0\nc tail\n";
      "p cnf 2 1\r\n1 2 0\r\n";                    (* CRLF *)
      "p cnf 2 1\n1 2 0";                          (* no trailing newline *)
      "p cnf 2 1\n+1 +2 0\n";                      (* '+' signs *)
      "p cnf 3 2\n1\n-2\n0 3 0\n";                 (* clauses span lines *)
      "p cnf 2 1\n1 2 0\n% trailer\n0\n";          (* %-style trailer *)
      "p    cnf   2   1  \n 1 2 0\n";              (* elastic whitespace *)
      "p cnf 0 0\n";                               (* empty formula *)
      "p cnf 2 2\n1 0 0\n";                        (* empty clause *)
      (* rejected layouts — messages must match byte-for-byte *)
      "";
      "c only a comment\n";
      "p cnf 2 1\n1 2\n";                          (* unterminated *)
      "p cnf 2 2\n1 0\n";                          (* count mismatch *)
      "p cnf 1 1\n7 0\n";                          (* literal out of range *)
      "p cnf 1 1\n-7 0\n";
      "p cnf -1 0\n";                              (* negative num_vars *)
      "p cnf 2\n";                                 (* short p-line *)
      "q cnf 2 1\n1 2 0\n";                        (* bad header *)
      "p cnf 2 1\n1 x 0\n";                        (* bad token *)
      "p cnf 2 1\n1 99999999999999999999 0\n";     (* overflow literal *)
      "p cnf 2 1\n1 - 2 0\n";                      (* bare sign *)
      "p cnf 2 1\n1 2 0\ntrailing junk\n";
    ]

let prop_flat_differential =
  QCheck.Test.make ~name:"dimacs: flat parser == legacy parser" ~count:500
    QCheck.(triple (int_bound 10000000) (int_range 1 12) (int_range 0 30))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun _ ->
            Array.init (Aig.Rng.int rng 5) (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = Cnf.Formula.create ~num_vars:nvars clauses in
      let s = Cnf.Dimacs.write_string f in
      (* Random textual perturbations that must not change the parse:
         comment insertion, CRLF line ends, trailing-newline removal. *)
      let s =
        match Aig.Rng.int rng 4 with
        | 0 -> "c prefix\n" ^ s
        | 1 ->
          String.concat "\r\n" (String.split_on_char '\n' s)
        | 2 ->
          if String.length s > 0 && s.[String.length s - 1] = '\n' then
            String.sub s 0 (String.length s - 1)
          else s
        | _ -> s
      in
      let a = Cnf.Dimacs.read_string s in
      let b = Cnf.Flat.to_formula (Cnf.Dimacs.read_flat_string s) in
      a.Cnf.Formula.num_vars = b.Cnf.Formula.num_vars
      && a.Cnf.Formula.clauses = b.Cnf.Formula.clauses
      (* and the streaming fingerprint agrees with the materialized one *)
      && Cnf.Fingerprint.equal
           (Cnf.Fingerprint.of_flat (Cnf.Dimacs.read_flat_string s))
           (Cnf.Fingerprint.of_formula a))

let prop_of_flat_equals_of_formula =
  QCheck.Test.make ~name:"fingerprint: of_flat == of_formula" ~count:500
    QCheck.(triple (int_bound 10000000) (int_range 1 14) (int_range 0 40))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun _ ->
            (* duplicates and tautologies on purpose: both paths must
               normalize them identically *)
            Array.init (Aig.Rng.int rng 6) (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = Cnf.Formula.create ~num_vars:nvars clauses in
      Cnf.Fingerprint.equal
        (Cnf.Fingerprint.of_flat (Cnf.Flat.of_formula f))
        (Cnf.Fingerprint.of_formula f))

let test_flat_mmap_file () =
  let f =
    Cnf.Formula.create ~num_vars:5
      [ [| 1; -2; 3 |]; [| -4 |]; [| 2; 4; 5 |]; [| -5; 1 |] ]
  in
  let path = Filename.temp_file "eda4sat_mmap" ".cnf" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Cnf.Dimacs.write_file f path;
      let fl = Cnf.Dimacs.read_flat_file path in
      Alcotest.(check (array (array int)))
        "mmap parse round-trips"
        f.Cnf.Formula.clauses
        (Cnf.Flat.to_formula fl).Cnf.Formula.clauses;
      Alcotest.(check (array (array int)))
        "read_file goes through the same path"
        f.Cnf.Formula.clauses
        (Cnf.Dimacs.read_file path).Cnf.Formula.clauses;
      (* A truncated file must answer the same error as the string
         parser on the same bytes. *)
      let full = Cnf.Dimacs.write_string f in
      let cut = String.sub full 0 (String.length full - 3) in
      let oc = open_out path in
      output_string oc cut;
      close_out oc;
      let from_string =
        match Cnf.Dimacs.read_string cut with
        | _ -> Alcotest.fail "truncated input accepted"
        | exception Cnf.Dimacs.Parse_error m -> m
      in
      (match Cnf.Dimacs.read_flat_file path with
       | _ -> Alcotest.fail "truncated file accepted"
       | exception Cnf.Dimacs.Parse_error m ->
         Alcotest.(check string) "same error via mmap" from_string m));
  (* missing files still raise Sys_error, like the channel reader *)
  match Cnf.Dimacs.read_flat_file "/nonexistent/eda4sat.cnf" with
  | _ -> Alcotest.fail "missing file accepted"
  | exception Sys_error _ -> ()

let test_flat_fingerprint_collision_smoke () =
  (* The of_flat collision smoke twin: same 3000-case generator seeded
     differently, hashing through the CSR path, zero collisions. *)
  let rng = Aig.Rng.create 20260806 in
  let tbl = Hashtbl.create 4096 in
  for i = 0 to 2999 do
    let nvars = 3 + Aig.Rng.int rng 12 in
    let clauses =
      List.init
        (1 + Aig.Rng.int rng 9)
        (fun _ ->
          Array.init
            (1 + Aig.Rng.int rng 4)
            (fun _ ->
              let v = 1 + Aig.Rng.int rng nvars in
              if Aig.Rng.bool rng then v else -v))
    in
    let f = Cnf.Formula.create ~num_vars:nvars clauses in
    let key =
      ( nvars,
        List.sort_uniq compare
          (List.filter_map
             (fun c ->
               let l = List.sort_uniq compare (Array.to_list c) in
               if List.exists (fun x -> List.mem (-x) l) l then None
               else Some l)
             clauses) )
    in
    let h = Cnf.Fingerprint.of_flat (Cnf.Flat.of_formula f) in
    check_bool
      (Printf.sprintf "of_flat matches of_formula at case %d" i)
      true
      (Cnf.Fingerprint.equal h (Cnf.Fingerprint.of_formula f));
    (match Hashtbl.find_opt tbl h with
     | Some k when k <> key ->
       Alcotest.failf "of_flat collision at case %d: %s" i
         (Cnf.Fingerprint.to_hex h)
     | _ -> ());
    Hashtbl.replace tbl h key
  done

let suite =
  suite
  @ [
      ("flat CSR round-trip", `Quick, test_flat_roundtrip);
      ("flat parser edge cases", `Quick, test_flat_parser_edge_cases);
      ("flat mmap file reader", `Quick, test_flat_mmap_file);
      ("of_flat collision smoke", `Quick,
       test_flat_fingerprint_collision_smoke);
    ]
  @ qsuite [ prop_flat_differential; prop_of_flat_equals_of_formula ]
