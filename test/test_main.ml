let () =
  Alcotest.run "eda4sat"
    [
      ("aig", Test_aig.suite);
      ("cnf", Test_cnf.suite);
      ("sat", Test_sat.suite);
      ("sat-fuzz", Test_sat_fuzz.suite);
      ("synth", Test_synth.suite);
      ("lutmap", Test_lutmap.suite);
      ("deepgate", Test_deepgate.suite);
      ("rl", Test_rl.suite);
      ("dispatch", Test_dispatch.suite);
      ("core", Test_core.suite);
      ("portfolio", Test_portfolio.suite);
      ("server", Test_server.suite);
      ("net", Test_net.suite);
      ("cli", Test_cli.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
    ]
