(* End-to-end tests of the built binary: SAT-competition exit codes
   for 'solve'/'portfolio', and a scripted 'serve' session exercising
   cache hits, in-flight dedup, deadline timeouts and metrics
   reconciliation over the wire protocol. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The test runner lives in _build/default/test/, the CLI next door in
   _build/default/bin/ — resolve relative to the runner itself so the
   path works for both `dune runtest` and `dune exec`. *)
let cli =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) Filename.parent_dir_name)
    (Filename.concat "bin" "eda4sat_cli.exe")

let dev_null_out () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0

(* Run the CLI with [stdin]/[stdout] redirected to the given files
   (or /dev/null) and return its exit code. *)
let run_cli ?stdin_file ?stdout_file args =
  let fd_in =
    match stdin_file with
    | Some f -> Unix.openfile f [ Unix.O_RDONLY ] 0
    | None -> Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0
  in
  let fd_out =
    match stdout_file with
    | Some f -> Unix.openfile f [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    | None -> dev_null_out ()
  in
  let fd_err = dev_null_out () in
  let pid =
    Unix.create_process cli (Array.of_list (cli :: args)) fd_in fd_out fd_err
  in
  Unix.close fd_in;
  Unix.close fd_out;
  Unix.close fd_err;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
    Alcotest.failf "CLI killed by signal %d" n

let temp_dir = Filename.temp_file "eda4sat_cli_test" ""

let () =
  Sys.remove temp_dir;
  Unix.mkdir temp_dir 0o755

let file name = Filename.concat temp_dir name

let write_cnf name f =
  Cnf.Dimacs.write_file f (file name);
  file name

let tiny_sat =
  Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |]; [| -2; 3 |] ]

let tiny_unsat =
  Cnf.Formula.create ~num_vars:2 [ [| 1 |]; [| -1; 2 |]; [| -2 |] ]

let php n = Workloads.Satcomp.pigeonhole ~pigeons:n ~holes:(n - 1)

(* --- exit codes ------------------------------------------------------ *)

let test_solve_exit_codes () =
  let sat = write_cnf "tiny_sat.cnf" tiny_sat in
  let unsat = write_cnf "tiny_unsat.cnf" tiny_unsat in
  let hard = write_cnf "php11.cnf" (php 11) in
  check_int "SAT exits 10" 10
    (run_cli [ "solve"; "--no-preprocess"; "-i"; sat ]);
  check_int "UNSAT exits 20" 20
    (run_cli [ "solve"; "--no-preprocess"; "-i"; unsat ]);
  check_int "preprocessed SAT exits 10" 10 (run_cli [ "solve"; "-i"; sat ]);
  check_int "timeout exits 0" 0
    (run_cli [ "solve"; "--no-preprocess"; "--timeout"; "0.05"; "-i"; hard ])

let test_portfolio_exit_codes () =
  let sat = write_cnf "tiny_sat2.cnf" tiny_sat in
  let unsat = write_cnf "tiny_unsat2.cnf" tiny_unsat in
  check_int "portfolio SAT exits 10" 10
    (run_cli [ "portfolio"; "--jobs"; "2"; "-i"; sat ]);
  check_int "portfolio UNSAT exits 20" 20
    (run_cli [ "portfolio"; "--jobs"; "2"; "-i"; unsat ])

(* --- serve e2e ------------------------------------------------------- *)

(* Pull "key": N out of the single-line STATS JSON. *)
let json_int json key =
  let pat = "\"" ^ key ^ "\": " in
  match String.index_opt json '{' with
  | None -> Alcotest.failf "not a JSON line: %s" json
  | Some _ -> (
    let rec find i =
      if i + String.length pat > String.length json then
        Alcotest.failf "key %s missing in %s" key json
      else if String.sub json i (String.length pat) = pat then (
        let j = ref (i + String.length pat) in
        let start = !j in
        while
          !j < String.length json
          && (match json.[!j] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr j
        done;
        int_of_string (String.sub json start (!j - start)))
      else find (i + 1)
    in
    find 0)

let test_serve_session () =
  let rng = Aig.Rng.create 7 in
  let r3 seed =
    ignore seed;
    Cnf.Formula.create ~num_vars:25
      (List.init 100 (fun _ ->
           Array.init 3 (fun _ ->
               let v = 1 + Aig.Rng.int rng 25 in
               if Aig.Rng.bool rng then v else -v)))
  in
  let blocker = write_cnf "blocker.cnf" (php 9) in
  let dedup =
    write_cnf "dedup.cnf"
      (Cnf.Formula.create ~num_vars:4
         [ [| 1; 2 |]; [| -1; 3 |]; [| -3; 4 |]; [| 2; -4 |] ])
  in
  let sat_base =
    Cnf.Formula.create ~num_vars:5
      [ [| 1; 2 |]; [| -2; 3 |]; [| -1; 4 |]; [| 4; 5 |]; [| -3; 5 |] ]
  in
  let base = write_cnf "sat_base.cnf" sat_base in
  (* The same formula with clauses shuffled and literals duplicated: a
     different file, the same canonical fingerprint. *)
  let renamed =
    write_cnf "sat_renamed.cnf"
      (Cnf.Formula.create ~num_vars:5
         [ [| 5; 4 |]; [| 2; 1; 2 |]; [| 5; -3 |]; [| 3; -2 |]; [| 4; -1 |] ])
  in
  let hard = write_cnf "php11_serve.cnf" (php 11) in
  let fillers = List.init 15 (fun i -> write_cnf
                                 (Printf.sprintf "r3_%d.cnf" i) (r3 i)) in
  let script = file "session.txt" in
  let oc = open_out script in
  (* 21 SOLVE requests: a slow blocker, a back-to-back duplicate pair
     (in-flight join), a known-SAT base, 15 fillers, a deadlined hard
     instance, then — after a SYNC barrier — a renamed duplicate of
     the base that must answer from the cache. *)
  output_string oc ("SOLVE " ^ blocker ^ "\n");
  output_string oc ("SOLVE " ^ dedup ^ "\n");
  output_string oc ("SOLVE " ^ dedup ^ "\n");
  output_string oc ("SOLVE " ^ base ^ "\n");
  List.iter (fun f -> output_string oc ("SOLVE " ^ f ^ "\n")) fillers;
  output_string oc ("SOLVE " ^ hard ^ " 100\n");
  output_string oc "SYNC\n";
  output_string oc ("SOLVE " ^ renamed ^ "\n");
  output_string oc "STATS\n";
  output_string oc "QUIT\n";
  close_out oc;
  let out = file "session.out" in
  check_int "serve exits 0" 0
    (run_cli ~stdin_file:script ~stdout_file:out
       [ "serve"; "--workers"; "1"; "--queue"; "64" ]);
  let lines =
    let ic = open_in out in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let count p = List.length (List.filter p lines) in
  let has_sub sub l =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
    in
    go 0
  in
  check_int "21 answers" 21 (count (has_sub "c job "));
  check_int "one join" 1 (count (has_sub "source=join"));
  check_int "one cache hit" 1 (count (has_sub "source=cache"));
  check_int "one timeout" 1 (count (fun l -> l = "TIMEOUT"));
  check_int "no failures on the wire" 0
    (count (fun l -> has_sub "FAILED" l || has_sub "REJECTED" l
                     || has_sub "ERROR" l));
  let answer_blocks =
    (* (header, verdict-and-model lines) per job, in print order. *)
    let rec go acc cur = function
      | [] -> List.rev (match cur with None -> acc | Some c -> c :: acc)
      | l :: rest ->
        if has_sub "c job " l then
          go (match cur with None -> acc | Some c -> c :: acc)
            (Some (l, [])) rest
        else (
          match cur with
          | Some (h, body) -> go acc (Some (h, body @ [ l ])) rest
          | None -> go acc None rest)
    in
    go [] None
      (List.filter
         (fun l ->
           (not (has_sub "c sync" l))
           && (String.length l = 0 || l.[0] <> '{'))
         lines)
  in
  let body_of pred =
    List.filter_map
      (fun (h, body) -> if pred h then Some body else None)
      answer_blocks
  in
  (match body_of (has_sub "dedup.cnf") with
   | [ b1; b2 ] ->
     Alcotest.(check (list string)) "join serves the same answer" b1 b2
   | bs -> Alcotest.failf "expected 2 dedup answers, got %d" (List.length bs));
  (match
     ( body_of (fun h -> has_sub "sat_base.cnf" h),
       body_of (fun h -> has_sub "sat_renamed.cnf" h) )
   with
   | [ b1 ], [ b2 ] ->
     Alcotest.(check (list string))
       "cache hit is bit-identical across files" b1 b2;
     (match b2 with
      | verdict :: v :: _ when verdict = "SAT" ->
        (* The served model must satisfy the formula actually
           submitted under the renamed file. *)
        let m = Array.make 5 false in
        String.split_on_char ' ' v
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some l when l > 0 && l <= 5 -> m.(l - 1) <- true
               | _ -> ());
        check_bool "cached model satisfies the duplicate file" true
          (Cnf.Formula.eval sat_base m)
      | _ -> Alcotest.fail "renamed duplicate did not answer SAT")
   | _ -> Alcotest.fail "base/renamed answers missing");
  let stats_line =
    match List.filter (has_sub "\"submitted\"") lines with
    | [ l ] -> l
    | ls -> Alcotest.failf "expected 1 STATS line, got %d" (List.length ls)
  in
  let g k = json_int stats_line k in
  check_int "requests reconcile: submitted + cache + warm + join + rejected"
    21
    (g "submitted" + g "cache_hits" + g "warm_hits" + g "dedup_joins"
    + g "rejected");
  check_int "every job completed"
    (g "submitted" + g "warm_hits")
    (g "completed");
  check_int "outcomes reconcile" (g "completed")
    (g "solved_sat" + g "solved_unsat" + g "timeouts" + g "failures");
  check_int "no failures" 0 (g "failures");
  check_int "one deadline enforced" 1 (g "timeouts");
  check_int "one cache hit in stats" 1 (g "cache_hits");
  check_int "one dedup join in stats" 1 (g "dedup_joins");
  (* Every SOLVE operand went through the transport loader, and each
     successful load lands in the parse-latency ring. *)
  check_int "every load parse-timed" 21 (g "parse_count");
  check_bool "parse p95 present" true (g "parse_p95_ms" >= 0);
  check_bool "warm snapshots coherent" true
    (g "warm_seeded" <= g "warm_hits");
  (* The deadlined job is resolved by the monitor while still queued;
     its stale heap entry may not have been popped yet when STATS is
     computed, so the depth is 0 or 1 — never a real waiter. *)
  check_bool "queue drained" true (g "queue_depth" <= 1);
  check_int "nothing left in flight" 0 (g "inflight")

(* --- serve: incremental session verbs -------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let has_sub sub l =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
  in
  go 0

let starts_with p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

(* Parse a "v 1 -2 3 0" line into a model array and check it against a
   formula over the same client variables. *)
let v_line_satisfies f line =
  let m = Array.make f.Cnf.Formula.num_vars false in
  String.split_on_char ' ' line
  |> List.iter (fun tok ->
         match int_of_string_opt tok with
         | Some l when l > 0 && l <= f.Cnf.Formula.num_vars ->
           m.(l - 1) <- true
         | _ -> ());
  Cnf.Formula.eval f m

let test_serve_session_verbs () =
  (* The session's client-side formula: (1|2)(-1|3).  Assuming -2
     forces 1 and 3; a pushed frame adding -3 makes assumption 1
     contradictory with core {1}; popping restores satisfiability. *)
  let base =
    Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -1; 3 |] ]
  in
  let script = file "verbs.txt" in
  let oc = open_out script in
  output_string oc "OPEN\n";
  output_string oc "ADD 0 1 2 0 -1 3 0\n";
  output_string oc "ASSUME 0 -2\n";
  output_string oc "SOLVE 0\n";
  output_string oc "PUSH 0\n";
  output_string oc "ADD 0 -3 0\n";
  output_string oc "ASSUME 0 1\n";
  output_string oc "SOLVE 0\n";
  output_string oc "POP 0\n";
  output_string oc "SOLVE 0\n";
  output_string oc "CLOSE 0\n";
  output_string oc "STATS\n";
  output_string oc "QUIT\n";
  close_out oc;
  let out = file "verbs.out" in
  check_int "serve exits 0" 0
    (run_cli ~stdin_file:script ~stdout_file:out
       [ "serve"; "--workers"; "2"; "--queue"; "64" ]);
  let lines = read_lines out in
  (* Strip per-answer headers and the STATS JSON; what remains is the
     ordered verdict stream, which must match the script exactly. *)
  let significant =
    List.filter
      (fun l ->
        String.length l > 0
        && l.[0] <> '{'
        && (not (starts_with "c job" l))
        && not (starts_with "c session" l))
      lines
  in
  (match significant with
   | [ "OPENED 0"; "OK"; "OK"; "SAT"; v1; "OK"; "OK"; "OK"; "UNSAT";
       core; "OK"; "SAT"; v2; "OK" ] ->
     check_bool "first model satisfies base" true (v_line_satisfies base v1);
     check_bool "first model honors assumption -2" true
       (not (v_line_satisfies (Cnf.Formula.create ~num_vars:3 [ [| 2 |] ]) v1));
     Alcotest.(check string) "unsat core is the failed assumption"
       "c core 1 0" core;
     check_bool "post-pop model satisfies base" true (v_line_satisfies base v2)
   | ls ->
     Alcotest.failf "unexpected answer stream (%d lines):\n%s"
       (List.length ls) (String.concat "\n" ls));
  let stats_line =
    match List.filter (has_sub "\"submitted\"") lines with
    | [ l ] -> l
    | ls -> Alcotest.failf "expected 1 STATS line, got %d" (List.length ls)
  in
  let g k = json_int stats_line k in
  check_int "ten session ops" 10 (g "session_ops");
  check_int "one session opened" 1 (g "sessions_opened");
  check_int "three session solves" 3 (g "session_solves");
  check_int "no one-shot traffic" 0
    (g "submitted" + g "cache_hits" + g "warm_hits" + g "dedup_joins"
    + g "rejected");
  check_int "requests reconcile: 10 session ops, nothing else" 10
    (g "submitted" + g "cache_hits" + g "warm_hits" + g "dedup_joins"
    + g "rejected" + g "session_ops")

(* --- serve: wire deadlines are milliseconds, validated --------------- *)

let test_serve_bad_deadline () =
  let sat = write_cnf "deadline_sat.cnf" tiny_sat in
  let script = file "deadline.txt" in
  let oc = open_out script in
  (* Negative and NaN deadline_ms must answer REJECTED bad-deadline —
     a NaN composed into an absolute instant would never fire and the
     job would hang forever.  The same validation guards the session
     SOLVE path.  A generous valid deadline still solves. *)
  output_string oc ("SOLVE " ^ sat ^ " -100\n");
  output_string oc ("SOLVE " ^ sat ^ " nan\n");
  output_string oc ("SOLVE " ^ sat ^ " 5000\n");
  output_string oc "OPEN\n";
  output_string oc "SOLVE 0 -1\n";
  output_string oc "SOLVE 0 nan\n";
  output_string oc "CLOSE 0\n";
  output_string oc "STATS\n";
  output_string oc "QUIT\n";
  close_out oc;
  let out = file "deadline.out" in
  check_int "serve exits 0" 0
    (run_cli ~stdin_file:script ~stdout_file:out
       [ "serve"; "--workers"; "1"; "--queue"; "16" ]);
  let lines = read_lines out in
  let count p = List.length (List.filter p lines) in
  check_int "four bad deadlines rejected" 4
    (count (has_sub "REJECTED bad-deadline"));
  check_int "valid deadline still solves" 1 (count (fun l -> l = "SAT"));
  let stats_line =
    match List.filter (has_sub "\"submitted\"") lines with
    | [ l ] -> l
    | ls -> Alcotest.failf "expected 1 STATS line, got %d" (List.length ls)
  in
  let g k = json_int stats_line k in
  check_int "rejections counted" 4 (g "rejected");
  check_int "one job submitted" 1 (g "submitted");
  check_int "close counted as a session op" 1 (g "session_ops")

(* --- serve: EOF is an implicit SYNC-and-drain ------------------------ *)

let test_serve_eof_drain () =
  let sat = write_cnf "eof_sat.cnf" tiny_sat in
  let unsat = write_cnf "eof_unsat.cnf" tiny_unsat in
  let script = file "eof.txt" in
  let oc = open_out script in
  (* No QUIT, and the final command has no trailing newline: EOF must
     still drain and print every answer before the process exits. *)
  output_string oc ("SOLVE " ^ sat ^ "\n");
  output_string oc ("SOLVE " ^ unsat);
  close_out oc;
  let out = file "eof.out" in
  check_int "serve exits 0" 0
    (run_cli ~stdin_file:script ~stdout_file:out
       [ "serve"; "--workers"; "1"; "--queue"; "16" ]);
  let lines = read_lines out in
  let count p = List.length (List.filter p lines) in
  check_int "both answers printed" 2 (count (has_sub "c job "));
  check_int "SAT answer present" 1 (count (fun l -> l = "SAT"));
  check_int "UNSAT answer not lost at EOF" 1 (count (fun l -> l = "UNSAT"))

(* --- serve: socket front-end ----------------------------------------- *)

(* Spawn the CLI without waiting; the caller owns the pid. *)
let spawn_cli ?stdout_file args =
  let fd_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let fd_out =
    match stdout_file with
    | Some f ->
      Unix.openfile f [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    | None -> dev_null_out ()
  in
  let fd_err = dev_null_out () in
  let pid =
    Unix.create_process cli (Array.of_list (cli :: args)) fd_in fd_out fd_err
  in
  Unix.close fd_in;
  Unix.close fd_out;
  Unix.close fd_err;
  pid

(* Poll the server's stdout for the "c listening on HOST:PORT" line. *)
let wait_port out_file =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "server never announced its port";
    let announced =
      match read_lines out_file with
      | exception _ -> None
      | lines ->
        List.find_map
          (fun l ->
            if starts_with "c listening on " l then
              match String.rindex_opt l ':' with
              | Some i ->
                int_of_string_opt
                  (String.sub l (i + 1) (String.length l - i - 1))
              | None -> None
            else None)
          lines
    in
    match announced with
    | Some port -> port
    | None ->
      Unix.sleepf 0.02;
      go ()
  in
  go ()

let test_serve_socket_multiclient () =
  let sat = write_cnf "mc_sat.cnf" tiny_sat in
  let unsat = write_cnf "mc_unsat.cnf" tiny_unsat in
  let hard = write_cnf "mc_php11.cnf" (php 11) in
  let out = file "mc_serve.out" in
  let pid =
    spawn_cli ~stdout_file:out
      [ "serve"; "--workers"; "2"; "--listen"; "127.0.0.1:0";
        "--tenant"; "limited=1" ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let port = wait_port out in
  (* Everyone submits before anyone reads: 8 one-shot clients, a
     session client, a quota-capped client and an undeclared slow
     reader all run concurrently through one event loop. *)
  let clients =
    List.init 8 (fun i ->
        let c = Test_net.connect port in
        Test_net.send c
          (Printf.sprintf "CLIENT mc%d\nSOLVE %s\nSOLVE %s\nQUIT\n" i sat
             unsat);
        c)
  in
  let s = Test_net.connect port in
  Test_net.send s
    "CLIENT sess\nOPEN\nADD 0 1 2 0 -1 3 0\nASSUME 0 -2\nSOLVE 0\nCLOSE \
     0\nQUIT\n";
  let q = Test_net.connect port in
  Test_net.send q
    (Printf.sprintf "CLIENT limited\nSOLVE %s 300\nSOLVE %s 300\nQUIT\n"
       hard hard);
  let slow = Test_net.connect port in
  Test_net.send slow (Printf.sprintf "SOLVE %s\nQUIT\n" sat);
  (* Per-connection answers arrive in submission order, whatever the
     engine's completion order across 11 concurrent connections. *)
  List.iteri
    (fun i c ->
      match Test_net.read_to_eof c with
      | [ hello; h1; "SAT"; v; h2; "UNSAT" ] ->
        Alcotest.(check string) "hello" (Printf.sprintf "HELLO mc%d" i) hello;
        check_bool "job 1 header" true (starts_with "c job 1" h1);
        check_bool "model line" true (starts_with "v " v);
        check_bool "job 2 header" true (starts_with "c job 2" h2)
      | ls ->
        Alcotest.failf "client %d: unexpected stream (%d lines):\n%s" i
          (List.length ls) (String.concat "\n" ls))
    clients;
  (match Test_net.read_to_eof s with
   | [ "HELLO sess"; oh; "OPENED 0"; ah; "OK"; sh; "OK"; vh; "SAT"; v;
       ch; "OK" ] ->
     check_bool "open header" true (starts_with "c job 1 op=open" oh);
     check_bool "add header" true (starts_with "c session 0 job 2 op=add" ah);
     check_bool "assume header" true
       (starts_with "c session 0 job 3 op=assume" sh);
     check_bool "solve header" true
       (starts_with "c session 0 job 4 op=solve" vh);
     check_bool "close header" true
       (starts_with "c session 0 job 5 op=close" ch);
     check_bool "session model" true (starts_with "v " v)
   | ls ->
     Alcotest.failf "session client: unexpected stream (%d lines):\n%s"
       (List.length ls) (String.concat "\n" ls));
  (match Test_net.read_to_eof q with
   | [ "HELLO limited"; h1; "TIMEOUT"; h2; "REJECTED quota" ] ->
     check_bool "quota job 1 header" true (starts_with "c job 1" h1);
     check_bool "quota job 2 header" true (starts_with "c job 2" h2)
   | ls ->
     Alcotest.failf "quota client: unexpected stream (%d lines):\n%s"
       (List.length ls) (String.concat "\n" ls));
  (* The slow reader only drains now: its answer waited in the
     connection buffer without ever blocking the loop or the others. *)
  (match Test_net.read_to_eof slow with
   | [ h1; "SAT"; _v ] ->
     check_bool "slow reader header" true (starts_with "c job 1" h1)
   | ls ->
     Alcotest.failf "slow client: unexpected stream (%d lines):\n%s"
       (List.length ls) (String.concat "\n" ls));
  (* Engine counters and per-client transport counters reconcile over
     one more connection. *)
  let st = Test_net.connect port in
  Test_net.send st "STATS\nQUIT\n";
  let stats_line =
    match
      List.filter (has_sub "\"submitted\"") (Test_net.read_to_eof st)
    with
    | [ l ] -> l
    | ls -> Alcotest.failf "expected 1 STATS line, got %d" (List.length ls)
  in
  let g k = json_int stats_line k in
  (* 17 distinct-or-duplicate one-shots reached the engine (8x2 + the
     slow reader's) plus the quota client's first; its second was
     refused at the net layer and never became an engine request. *)
  check_int "engine accepted 18 one-shots" 18
    (g "submitted" + g "cache_hits" + g "warm_hits" + g "dedup_joins");
  check_int "no engine rejections" 0 (g "rejected");
  check_int "four session ops" 4 (g "session_ops");
  check_int "one session opened" 1 (g "sessions_opened");
  check_int "one session closed" 1 (g "sessions_closed");
  check_int "the deadlined job timed out" 1 (g "timeouts");
  check_int "everything else completed"
    (g "submitted" + g "warm_hits")
    (g "completed");
  check_bool "per-client counters: one-shot tenant" true
    (has_sub "\"mc3\": {\"requests\": 2, \"answered\": 2, \"rejected\": 0}"
       stats_line);
  check_bool "per-client counters: session tenant" true
    (has_sub "\"sess\": {\"requests\": 5, \"answered\": 5, \"rejected\": 0}"
       stats_line);
  check_bool "per-client counters: quota rejection recorded" true
    (has_sub
       "\"limited\": {\"requests\": 2, \"answered\": 1, \"rejected\": 1}"
       stats_line);
  check_bool "per-client counters: undeclared client is anon" true
    (has_sub "\"anon\": {\"requests\": 1, \"answered\": 1, \"rejected\": 0}"
       stats_line);
  (* Shut the server down for real and insist on a clean exit. *)
  Unix.kill pid Sys.sigterm;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, st -> (
    match st with
    | Unix.WEXITED c -> Alcotest.failf "server exited %d" c
    | _ -> Alcotest.fail "server killed by signal")

let test_serve_sigterm_drain () =
  let hard = write_cnf "drain_php11.cnf" (php 11) in
  let out = file "drain_serve.out" in
  let pid =
    spawn_cli ~stdout_file:out
      [ "serve"; "--workers"; "1"; "--listen"; "127.0.0.1:0" ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let port = wait_port out in
  let c = Test_net.connect port in
  (* No QUIT: only SIGTERM ends this connection.  The in-flight solve
     must still answer before the server exits. *)
  Test_net.send c (Printf.sprintf "SOLVE %s 300\n" hard);
  Unix.sleepf 0.1;
  Unix.kill pid Sys.sigterm;
  let lines = Test_net.read_to_eof c in
  Test_net.close_client c;
  check_bool "in-flight header survived the drain" true
    (List.exists (starts_with "c job 1") lines);
  check_bool "in-flight answer survived the drain" true
    (List.exists (fun l -> l = "TIMEOUT") lines);
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> Alcotest.failf "drained server exited %d" c
  | _ -> Alcotest.fail "drained server killed by signal"

let suite =
  [
    ("solve exit codes", `Quick, test_solve_exit_codes);
    ("portfolio exit codes", `Quick, test_portfolio_exit_codes);
    ("serve e2e session", `Quick, test_serve_session);
    ("serve session verbs", `Quick, test_serve_session_verbs);
    ("serve bad deadline rejected", `Quick, test_serve_bad_deadline);
    ("serve eof drains answers", `Quick, test_serve_eof_drain);
    ("serve socket multi-client", `Quick, test_serve_socket_multiclient);
    ("serve SIGTERM graceful drain", `Quick, test_serve_sigterm_drain);
  ]
