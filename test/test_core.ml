(* Tests for the eda4sat core: instances, RL state, Algorithm 1
   pipeline (including satisfiability preservation), environment and
   trainer. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_miter ~buggy seed =
  Workloads.Lec.generate ~buggy ~seed ~num_pis:8 ~num_ands:60 ()

let result_kind = function
  | Sat.Solver.Sat _ -> `Sat
  | Sat.Solver.Unsat -> `Unsat
  | Sat.Solver.Unknown -> `Unknown

(* ------------------------------------------------------------------ *)
(* Instance *)

let test_instance_cnf () =
  let f = Cnf.Formula.create ~num_vars:3 [ [| 1; 2 |]; [| -3 |] ] in
  let inst = Eda4sat.Instance.of_cnf ~name:"t" f in
  check "vars" 3 (Eda4sat.Instance.num_vars inst);
  check "clauses" 2 (Eda4sat.Instance.num_clauses inst);
  check_bool "no gate count" true (Eda4sat.Instance.num_gates inst = None);
  let g = Eda4sat.Instance.to_aig inst in
  check "single po" 1 (Aig.Graph.num_pos g)

let test_instance_circuit () =
  let g = small_miter ~buggy:false 1 in
  let inst = Eda4sat.Instance.of_circuit ~name:"m" g in
  check_bool "gate count" true
    (Eda4sat.Instance.num_gates inst = Some (Aig.Graph.num_ands g));
  let f = Eda4sat.Instance.direct_formula inst in
  check_bool "tseitin vars" true (f.Cnf.Formula.num_vars > 8)

(* ------------------------------------------------------------------ *)
(* State *)

let test_state () =
  let g = small_miter ~buggy:false 2 in
  let st = Eda4sat.State.of_initial g in
  let s = Eda4sat.State.observe st g in
  check "dim matches" (Eda4sat.State.dim Deepgate.Embedding.default_config)
    (Array.length s);
  (* Ratios w.r.t. self are 1. *)
  Alcotest.(check (float 1e-9)) "area ratio" 1.0 s.(0);
  Alcotest.(check (float 1e-9)) "depth ratio" 1.0 s.(1);
  (* After synthesis the ratios drop below or stay at 1. *)
  let g' = Synth.Rewrite.run g in
  let s' = Eda4sat.State.observe st g' in
  check_bool "area ratio shrinks" true (s'.(0) <= 1.0 +. 1e-9);
  (* The embedding part is unchanged (it is D(G0)). *)
  for i = 6 to Array.length s - 1 do
    Alcotest.(check (float 0.0)) "frozen embedding" s.(i) s'.(i)
  done

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_pipeline_agreement_on_miters () =
  (* Baseline, [15] and ours must agree on satisfiability. *)
  List.iter
    (fun (buggy, seed) ->
      let inst =
        Eda4sat.Instance.of_circuit ~name:"m" (small_miter ~buggy seed)
      in
      let rb = Eda4sat.Pipeline.run Eda4sat.Pipeline.baseline inst in
      let re = Eda4sat.Pipeline.run Eda4sat.Pipeline.een2007 inst in
      let ro = Eda4sat.Pipeline.run (Eda4sat.Pipeline.ours ()) inst in
      let expected = if buggy then `Sat else `Unsat in
      check_bool "baseline verdict" true
        (result_kind rb.Eda4sat.Pipeline.result = expected);
      check_bool "een2007 verdict" true
        (result_kind re.Eda4sat.Pipeline.result = expected);
      check_bool "ours verdict" true
        (result_kind ro.Eda4sat.Pipeline.result = expected);
      (* A zero-LUT netlist is legitimate: resub can collapse the whole
         miter to a constant output. *)
      check_bool "netlist sane" true (ro.Eda4sat.Pipeline.netlist_luts >= 0);
      check_bool "aig stats recorded" true
        (ro.Eda4sat.Pipeline.aig_before <> None
         && ro.Eda4sat.Pipeline.aig_after <> None))
    [ (false, 10); (true, 11); (false, 12); (true, 13) ]

let prop_pipeline_preserves_satisfiability =
  QCheck.Test.make ~name:"pipeline: equisatisfiable with direct solving"
    ~count:40
    QCheck.(triple (int_bound 100000) (int_range 4 9) (int_range 6 30))
    (fun (seed, nvars, nclauses) ->
      let rng = Aig.Rng.create seed in
      let clauses =
        List.init nclauses (fun _ ->
            let len = 1 + Aig.Rng.int rng 3 in
            Array.init len (fun _ ->
                let v = 1 + Aig.Rng.int rng nvars in
                if Aig.Rng.bool rng then v else -v))
      in
      let f = Cnf.Formula.create ~num_vars:nvars clauses in
      let inst = Eda4sat.Instance.of_cnf ~name:"q" f in
      let rb = Eda4sat.Pipeline.solve_direct inst in
      let ro = Eda4sat.Pipeline.run (Eda4sat.Pipeline.ours ()) inst in
      result_kind rb.Eda4sat.Pipeline.result
      = result_kind ro.Eda4sat.Pipeline.result)

let test_pipeline_random_policy_and_reduction () =
  let inst =
    Eda4sat.Instance.of_circuit ~name:"m" (small_miter ~buggy:false 20)
  in
  let rb = Eda4sat.Pipeline.run Eda4sat.Pipeline.baseline inst in
  let rr =
    Eda4sat.Pipeline.run (Eda4sat.Pipeline.ours_without_rl ~seed:5) inst
  in
  check_bool "random policy verdict" true
    (result_kind rr.Eda4sat.Pipeline.result = `Unsat);
  check "10 random ops" 10 (List.length rr.Eda4sat.Pipeline.recipe_used);
  (* reduction is 100*(tb - t)/tb. *)
  let red = Eda4sat.Pipeline.reduction ~baseline:rb rr in
  check_bool "reduction bounded above" true (red <= 100.0);
  let same = Eda4sat.Pipeline.reduction ~baseline:rb rb in
  Alcotest.(check (float 1e-9)) "self reduction" 0.0 same

let test_pipeline_agent_recipe () =
  (* An untrained agent still yields a valid run and a recorded recipe
     no longer than T. *)
  let env_cfg = Eda4sat.Env.default_config in
  let agent = Rl.Dqn.create (Eda4sat.Trainer.dqn_config_for env_cfg) in
  let inst =
    Eda4sat.Instance.of_circuit ~name:"m" (small_miter ~buggy:false 21)
  in
  let cfg = Eda4sat.Pipeline.ours ~agent ~max_steps:3 () in
  let r = Eda4sat.Pipeline.run cfg inst in
  check_bool "verdict" true (result_kind r.Eda4sat.Pipeline.result = `Unsat);
  check_bool "recipe bounded" true
    (List.length r.Eda4sat.Pipeline.recipe_used <= 3)

(* ------------------------------------------------------------------ *)
(* Env + Trainer *)

let tiny_env_config =
  {
    Eda4sat.Env.default_config with
    Eda4sat.Env.max_steps = 3;
    reward_limits =
      {
        Sat.Solver.no_limits with
        Sat.Solver.max_decisions = Some 20_000;
      };
  }

let test_env_episode () =
  let instances = [| small_miter ~buggy:false 30; small_miter ~buggy:true 31 |] in
  let env = Eda4sat.Env.make tiny_env_config instances in
  let s0 = env.Rl.Dqn.reset () in
  check "state dim" (Eda4sat.Env.state_dim tiny_env_config) (Array.length s0);
  (* Applying non-End actions runs to T then terminates with reward. *)
  let _, r1, t1 = env.Rl.Dqn.step 0 in
  check_bool "not yet terminal" true ((not t1) && r1 = 0.0);
  let _, r2, t2 = env.Rl.Dqn.step 2 in
  check_bool "still not terminal" true ((not t2) && r2 = 0.0);
  let _, r3, t3 = env.Rl.Dqn.step 0 in
  check_bool "terminal at T" true t3;
  check_bool "reward finite" true (Float.is_finite r3);
  (* End action terminates immediately after reset. *)
  ignore (env.Rl.Dqn.reset ());
  let _, r, t = env.Rl.Dqn.step (Synth.Recipe.index_of_op Synth.Recipe.End) in
  check_bool "end is terminal" true t;
  check_bool "end reward ~ 0 (nothing done)" true (Float.is_finite r)

let test_env_reward_sign () =
  (* A recipe that simplifies a redundant miter must earn nonnegative
     normalized reward. *)
  let g = small_miter ~buggy:false 33 in
  let cfg = tiny_env_config in
  let b0 = Eda4sat.Env.branching_of cfg g in
  let g' =
    Synth.Recipe.apply_sequence
      [ Synth.Recipe.Rewrite; Synth.Recipe.Resub ]
      g
  in
  let bt = Eda4sat.Env.branching_of cfg g' in
  check_bool
    (Printf.sprintf "branching reduced (%d -> %d)" b0 bt)
    true (bt <= b0)

let test_trainer_runs () =
  let instances = [| small_miter ~buggy:false 40; small_miter ~buggy:true 41 |] in
  let agent, history =
    Eda4sat.Trainer.train ~env_config:tiny_env_config instances ~episodes:5
  in
  check "history length" 5 (List.length history);
  List.iteri
    (fun i p ->
      check "episode numbering" (i + 1) p.Eda4sat.Trainer.episode;
      check_bool "reward finite" true (Float.is_finite p.Eda4sat.Trainer.reward))
    history;
  check_bool "agent usable" true
    (Array.length
       (Rl.Dqn.q_values agent
          (Array.make (Eda4sat.Env.state_dim tiny_env_config) 0.0))
     = Synth.Recipe.num_actions);
  let avg = Eda4sat.Trainer.average_reward history 3 in
  check_bool "average finite" true (Float.is_finite avg)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let suite =
  [
    ("instance from cnf", `Quick, test_instance_cnf);
    ("instance from circuit", `Quick, test_instance_circuit);
    ("state vector", `Quick, test_state);
    ("pipeline agreement on miters", `Quick, test_pipeline_agreement_on_miters);
    ("pipeline random policy + reduction", `Quick,
     test_pipeline_random_policy_and_reduction);
    ("pipeline with agent", `Quick, test_pipeline_agent_recipe);
    ("env episode mechanics", `Quick, test_env_episode);
    ("env reward sign", `Quick, test_env_reward_sign);
    ("trainer runs", `Quick, test_trainer_runs);
  ]
  @ qsuite [ prop_pipeline_preserves_satisfiability ]

let test_transform_writes_solvable_cnf () =
  (* transform = Algorithm 1 without the final solve; its output must
     be equisatisfiable with the instance. *)
  let g = small_miter ~buggy:true 55 in
  let inst = Eda4sat.Instance.of_circuit ~name:"t" g in
  let f, rep = Eda4sat.Pipeline.transform (Eda4sat.Pipeline.ours ()) inst in
  check_bool "no solving happened" true
    (rep.Eda4sat.Pipeline.t_solve = 0.0
     && rep.Eda4sat.Pipeline.result = Sat.Solver.Unknown);
  check_bool "recipe recorded" true
    (rep.Eda4sat.Pipeline.recipe_used <> []);
  (match fst (Sat.Solver.solve f) with
   | Sat.Solver.Sat _ -> ()
   | _ -> Alcotest.fail "buggy miter must stay satisfiable");
  (* DIMACS round trip of the transformed formula. *)
  let f' = Cnf.Dimacs.read_string (Cnf.Dimacs.write_string f) in
  check "vars preserved" f.Cnf.Formula.num_vars f'.Cnf.Formula.num_vars

let test_pipeline_advanced_recovery () =
  (* The advanced_recovery flag must not change satisfiability. *)
  let f = Workloads.Satcomp.pigeonhole ~pigeons:4 ~holes:3 in
  let inst = Eda4sat.Instance.of_cnf ~name:"php43" f in
  let cfg =
    { (Eda4sat.Pipeline.ours ()) with Eda4sat.Pipeline.advanced_recovery = true }
  in
  let r = Eda4sat.Pipeline.run cfg inst in
  check_bool "still unsat" true
    (result_kind r.Eda4sat.Pipeline.result = `Unsat)

let suite =
  suite
  @ [
      ("transform produces solvable CNF", `Quick,
       test_transform_writes_solvable_cnf);
      ("pipeline with advanced recovery", `Quick,
       test_pipeline_advanced_recovery);
    ]

(* ------------------------------------------------------------------ *)
(* Proof-carrying simplification through the pipeline *)

let test_pipeline_simplify_unsat_proof () =
  (* An UNSAT miter through transform + Cnf.Simplify + solve must leave
     one sealed DRAT stream that checks against the CNF entering the
     simplifier (the transformed formula). *)
  let inst =
    Eda4sat.Instance.of_circuit ~name:"m" (small_miter ~buggy:false 60)
  in
  let cfg = Eda4sat.Pipeline.ours () in
  let f, _ = Eda4sat.Pipeline.transform cfg inst in
  let proof = Sat.Proof.create () in
  let r = Eda4sat.Pipeline.run ~proof ~simplify:true cfg inst in
  check_bool "unsat" true (result_kind r.Eda4sat.Pipeline.result = `Unsat);
  check_bool "proof sealed" true (Sat.Proof.sealed proof);
  check_bool "end-to-end proof checks against the transformed CNF" true
    (Sat.Proof.check f proof)

let test_pipeline_simplify_sat_model_lifted () =
  (* A SAT answer under ~simplify must carry a model over the solved
     formula's variables that actually satisfies it. *)
  let inst =
    Eda4sat.Instance.of_circuit ~name:"m" (small_miter ~buggy:true 61)
  in
  let cfg = Eda4sat.Pipeline.ours () in
  let f, _ = Eda4sat.Pipeline.transform cfg inst in
  let r = Eda4sat.Pipeline.run ~simplify:true cfg inst in
  (match r.Eda4sat.Pipeline.result with
   | Sat.Solver.Sat m ->
     check_bool "lifted model satisfies the transformed CNF" true
       (Cnf.Formula.eval f m)
   | _ -> Alcotest.fail "buggy miter must be satisfiable");
  (* Same through the direct path. *)
  let f0 = Eda4sat.Instance.direct_formula inst in
  let rd = Eda4sat.Pipeline.solve_direct ~simplify:true inst in
  match rd.Eda4sat.Pipeline.result with
  | Sat.Solver.Sat m ->
    check_bool "direct lifted model satisfies the input" true
      (Cnf.Formula.eval f0 m)
  | _ -> Alcotest.fail "direct solve must agree"

let test_pipeline_simplify_refuted_in_preprocessing () =
  (* A contradiction the simplifier refutes on its own: Unsat with
     zeroed solver stats and a sealed, checkable proof. *)
  let f =
    Cnf.Formula.create ~num_vars:2 [ [| 1 |]; [| -1; 2 |]; [| -2 |] ]
  in
  let inst = Eda4sat.Instance.of_cnf ~name:"up-unsat" f in
  let proof = Sat.Proof.create () in
  let r = Eda4sat.Pipeline.solve_direct ~proof ~simplify:true inst in
  check_bool "unsat" true (result_kind r.Eda4sat.Pipeline.result = `Unsat);
  check "no solver conflicts" 0
    r.Eda4sat.Pipeline.solver_stats.Sat.Solver.conflicts;
  check_bool "proof sealed by the simplifier" true (Sat.Proof.sealed proof);
  check_bool "proof checks" true (Sat.Proof.check f proof)

let suite =
  suite
  @ [
      ("pipeline ~simplify: end-to-end UNSAT proof", `Quick,
       test_pipeline_simplify_unsat_proof);
      ("pipeline ~simplify: SAT models lifted", `Quick,
       test_pipeline_simplify_sat_model_lifted);
      ("pipeline ~simplify: refuted in preprocessing", `Quick,
       test_pipeline_simplify_refuted_in_preprocessing);
    ]
