(* eda4sat — command-line front end of the EDA-driven SAT preprocessing
   framework.

     eda4sat solve      -i problem.cnf [--no-preprocess] [--timeout S]
     eda4sat serve      [--workers N] [--queue N] [--cache N] [--mode M]
     eda4sat preprocess -i problem.cnf -o simplified.cnf [...]
     eda4sat train      --episodes N --out agent.weights
     eda4sat generate   --family php --out file.cnf [...]
     eda4sat tables     [--table N] [--scale S] [--timeout S] [--agent F]

   Inputs ending in .cnf/.dimacs are DIMACS; .aag files are ASCII
   AIGER circuits.

   'solve', 'portfolio' and 'cube' exit with the SAT-competition
   convention: 10 = SATISFIABLE, 20 = UNSATISFIABLE, 0 = UNKNOWN
   (timeout). *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let read_instance path =
  if Filename.check_suffix path ".aag" then
    Eda4sat.Instance.of_circuit ~name:(Filename.basename path)
      (Aig.Aiger_io.read_file path)
  else
    Eda4sat.Instance.of_cnf ~name:(Filename.basename path)
      (Cnf.Dimacs.read_file path)

let limits_of_timeout timeout =
  { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some timeout }

let load_agent = function
  | None -> None
  | Some path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let agent =
      Rl.Dqn.create
        (Eda4sat.Trainer.dqn_config_for Eda4sat.Env.default_config)
    in
    Rl.Dqn.load_weights_string agent s;
    Some agent

let pipeline_config ~agent ~mapper ~recipe =
  let base =
    match recipe with
    | Some r -> (
      match Synth.Recipe.parse r with
      | Ok ops ->
        { (Eda4sat.Pipeline.ours ()) with
          Eda4sat.Pipeline.recipe = Eda4sat.Pipeline.Fixed ops }
      | Error e -> failwith e)
    | None -> Eda4sat.Pipeline.ours ?agent ()
  in
  match mapper with
  | "conventional" ->
    { base with Eda4sat.Pipeline.mapper = Lutmap.Mapper.default_config }
  | "branching" ->
    { base with Eda4sat.Pipeline.mapper = Lutmap.Mapper.cost_customized_config }
  | m -> failwith ("unknown mapper: " ^ m)

(* --- common arguments ---------------------------------------------- *)

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input instance (.cnf or .aag).")

let timeout_arg =
  Arg.(
    value & opt float 300.0
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Solver time budget.")

let mapper_arg =
  Arg.(
    value & opt string "branching"
    & info [ "mapper" ] ~docv:"KIND"
        ~doc:"LUT mapper cost: 'branching' (cost-customized) or \
              'conventional'.")

let recipe_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "recipe" ] ~docv:"OPS"
        ~doc:"Fixed synthesis recipe, e.g. 'rewrite;resub;balance'. \
              Overrides the agent.")

let agent_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "agent" ] ~docv:"FILE"
        ~doc:"Trained agent weights (from 'eda4sat train').")

(* SAT-competition exit codes, used by 'solve' and 'portfolio'. *)
let exit_sat = 10
let exit_unsat = 20
let exit_unknown = 0

(* Commands without a verdict exit 0 on success. *)
let returns_ok t = Term.(const (fun () -> 0) $ t)

(* DIMACS "v" lines for a model over the original variables. *)
let print_model m =
  let buf = Buffer.create (4 * Array.length m) in
  Buffer.add_char buf 'v';
  Array.iteri
    (fun i b ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (if b then i + 1 else -(i + 1))))
    m;
  Buffer.add_string buf " 0";
  print_endline (Buffer.contents buf)

let write_proof path proof =
  match (path, proof) with
  | Some path, Some p ->
    let oc = open_out path in
    output_string oc (Sat.Proof.to_string p);
    close_out oc;
    Printf.printf "c DRAT proof written to %s (%d steps%s)\n" path
      (Sat.Proof.num_steps p)
      (if Sat.Proof.sealed p then "" else "; incomplete — answer not UNSAT")
  | _ -> ()

(* --- solve ---------------------------------------------------------- *)

let solve_cmd =
  let run verbose input timeout no_preprocess cnf_simplify proof_file mapper
      recipe agent_file =
    setup_logs verbose;
    let inst = read_instance input in
    let limits = limits_of_timeout timeout in
    let cfg =
      if no_preprocess then Eda4sat.Pipeline.baseline
      else
        let agent = load_agent agent_file in
        pipeline_config ~agent ~mapper ~recipe
    in
    let proof = Option.map (fun _ -> Sat.Proof.create ()) proof_file in
    if cnf_simplify then begin
      (* The complementary CNF-level layer (paper §4.2 keeps Kissat's
         default preprocessing on): circuit pipeline first, then
         SatELite-style simplification, then solve.  The simplifier
         logs into the same DRAT recorder as the solver, so the proof
         is one stream checkable against the pre-simplification CNF. *)
      let f, rep = Eda4sat.Pipeline.transform cfg inst in
      Format.printf "%a@." Eda4sat.Pipeline.pp_report rep;
      match Cnf.Simplify.run ?proof f with
      | Cnf.Simplify.Proved_unsat ->
        print_endline "c refuted during CNF simplification";
        write_proof proof_file proof;
        print_endline "s UNSATISFIABLE";
        exit_unsat
      | Cnf.Simplify.Simplified simp ->
        let f' = Cnf.Simplify.formula simp in
        print_endline ("c " ^ Cnf.Simplify.stats simp);
        Printf.printf "c simplified to %d vars, %d clauses\n"
          f'.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f');
        let result, stats = Sat.Solver.solve ~limits ?proof f' in
        let code =
          match result with
          | Sat.Solver.Sat m ->
            (* The solver's model covers the simplified formula only:
               lift it over the original variables and check it there
               before claiming satisfiability. *)
            let m0 = Cnf.Simplify.reconstruct simp m in
            if Cnf.Formula.eval f m0 then begin
              print_endline "s SATISFIABLE";
              print_model m0;
              exit_sat
            end
            else begin
              print_endline
                "c ERROR: reconstructed model fails the original formula";
              print_endline "s UNKNOWN";
              exit_unknown
            end
          | Sat.Solver.Unsat ->
            write_proof proof_file proof;
            print_endline "s UNSATISFIABLE";
            exit_unsat
          | Sat.Solver.Unknown ->
            print_endline "s UNKNOWN";
            exit_unknown
        in
        Format.printf "c %a@." Sat.Solver.pp_stats stats;
        code
    end
    else begin
      let report = Eda4sat.Pipeline.run ~limits ?proof cfg inst in
      Format.printf "%a@." Eda4sat.Pipeline.pp_report report;
      let code =
        match report.Eda4sat.Pipeline.result with
        | Sat.Solver.Sat _ ->
          print_endline "s SATISFIABLE";
          exit_sat
        | Sat.Solver.Unsat ->
          write_proof proof_file proof;
          print_endline "s UNSATISFIABLE";
          exit_unsat
        | Sat.Solver.Unknown ->
          print_endline "s UNKNOWN";
          exit_unknown
      in
      Format.printf "c %a@." Sat.Solver.pp_stats
        report.Eda4sat.Pipeline.solver_stats;
      code
    end
  in
  let no_preprocess =
    Arg.(
      value & flag
      & info [ "no-preprocess" ] ~doc:"Solve directly, skipping Algorithm 1.")
  in
  let cnf_simplify =
    Arg.(
      value & flag
      & info [ "cnf-simplify" ]
          ~doc:"Also run SatELite-style CNF simplification before solving.")
  in
  let proof_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "proof" ] ~docv:"FILE"
          ~doc:"On an UNSAT answer, write a DRAT proof to FILE.  The \
                proof refutes the CNF handed to the simplifier/solver: \
                the input formula under --no-preprocess, the \
                transformed CNF otherwise.  With --cnf-simplify the \
                simplification steps are part of the same stream.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Preprocess (by default) and solve an instance.")
    Term.(
      const run $ verbose_arg $ input_arg $ timeout_arg $ no_preprocess
      $ cnf_simplify $ proof_file $ mapper_arg $ recipe_arg $ agent_arg)

(* --- portfolio ------------------------------------------------------- *)

let portfolio_cmd =
  let run verbose input timeout jobs share_lbd mapper recipe agent_file =
    setup_logs verbose;
    let inst = read_instance input in
    let limits = limits_of_timeout timeout in
    let agent = load_agent agent_file in
    let cfg = pipeline_config ~agent ~mapper ~recipe in
    let strategies = Eda4sat.Pipeline.portfolio_strategies ~jobs cfg inst in
    Printf.printf "c racing %d lanes (jobs=%d, share-lbd=%d):\n" jobs jobs
      share_lbd;
    List.iteri
      (fun i s -> Format.printf "c   lane %d: %a@." i Portfolio.Strategy.pp s)
      strategies;
    let report, outcome =
      Eda4sat.Pipeline.run_portfolio ~limits ~jobs ~share_lbd
        ~log:(fun msg -> Printf.printf "c %s\n%!" msg)
        cfg inst
    in
    (match outcome.Portfolio.Runner.winner with
     | Some w ->
       Format.printf "c winner: lane %d (%a)@." w Portfolio.Strategy.pp
         (List.nth strategies w)
     | None -> print_endline "c no winner");
    Printf.printf "c shared clauses: published=%d delivered=%d dropped=%d\n"
      outcome.Portfolio.Runner.shared_published
      outcome.Portfolio.Runner.shared_delivered
      outcome.Portfolio.Runner.shared_dropped;
    Printf.printf "c race wall time: %.3fs\n" outcome.Portfolio.Runner.wall;
    let code =
      match report.Eda4sat.Pipeline.result with
      | Sat.Solver.Sat _ ->
        print_endline "s SATISFIABLE";
        exit_sat
      | Sat.Solver.Unsat ->
        print_endline "s UNSATISFIABLE";
        exit_unsat
      | Sat.Solver.Unknown ->
        print_endline "s UNKNOWN";
        exit_unknown
    in
    Format.printf "c %a@." Sat.Solver.pp_stats
      report.Eda4sat.Pipeline.solver_stats;
    code
  in
  let jobs =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains to race (1 = deterministic sequential).")
  in
  let share_lbd =
    Arg.(value & opt int 4
         & info [ "share-lbd" ] ~docv:"LBD"
             ~doc:"Maximum glue of shared learnt clauses (0 disables \
                   sharing).")
  in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:"Race diversified solver configurations — including EDA \
             preprocessing lanes — with first-wins cancellation and \
             learnt-clause sharing.")
    Term.(const run $ verbose_arg $ input_arg $ timeout_arg $ jobs $ share_lbd
          $ mapper_arg $ recipe_arg $ agent_arg)

(* --- cube ------------------------------------------------------------- *)

let cube_cmd =
  let run verbose input timeout cubes jobs probe_limit proof_file =
    setup_logs verbose;
    let inst = read_instance input in
    let limits = limits_of_timeout timeout in
    let proof = Option.map (fun _ -> Sat.Proof.create ()) proof_file in
    let report, cr =
      Eda4sat.Pipeline.solve_cube ~limits ~cubes ~probe_limit ~jobs ?proof
        ~log:(fun msg -> Printf.printf "c %s\n%!" msg)
        inst
    in
    let count p =
      Array.fold_left
        (fun n o -> if p o then n + 1 else n)
        0 cr.Portfolio.Cuber.outcomes
    in
    Printf.printf
      "c cubes=%d (dead=%d) refuted=%d cancelled=%d solved=%d steals=%d \
       wall=%.3fs\n"
      (Array.length cr.Portfolio.Cuber.cubes)
      (Array.fold_left
         (fun n c -> if c.Portfolio.Cuber.dead then n + 1 else n)
         0 cr.Portfolio.Cuber.cubes)
      (count (fun o -> o = Portfolio.Cuber.Cube_refuted))
      (count (fun o -> o = Portfolio.Cuber.Cube_cancelled))
      cr.Portfolio.Cuber.solved cr.Portfolio.Cuber.steals
      cr.Portfolio.Cuber.wall;
    (match cr.Portfolio.Cuber.failure with
     | Some msg -> Printf.printf "c cube failure: %s\n" msg
     | None -> ());
    let code =
      match cr.Portfolio.Cuber.result with
      | Sat.Solver.Sat m ->
        print_endline "s SATISFIABLE";
        print_model m;
        exit_sat
      | Sat.Solver.Unsat ->
        (* solve_cube publishes Unsat only when every cube is refuted;
           with --proof the stitched stream is sealed through the empty
           clause. *)
        write_proof proof_file proof;
        print_endline "s UNSATISFIABLE";
        exit_unsat
      | Sat.Solver.Unknown ->
        print_endline "s UNKNOWN";
        exit_unknown
    in
    Format.printf "c %a@." Sat.Solver.pp_stats
      report.Eda4sat.Pipeline.solver_stats;
    code
  in
  let cubes =
    Arg.(value & opt int 8
         & info [ "cubes" ] ~docv:"N"
             ~doc:"Target cube count; the lookahead tree splits until it \
                   has N leaves (rounded to the tree shape).")
  in
  let jobs =
    Arg.(value & opt int 4
         & info [ "j"; "cube-jobs"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains conquering cubes (1 = deterministic \
                   sequential, bit-identical cube order).")
  in
  let probe_limit =
    Arg.(value & opt int 32
         & info [ "cube-probe-limit" ] ~docv:"N"
             ~doc:"Lookahead probe budget: candidate split variables \
                   propagated (both phases) per tree node.")
  in
  let proof_file =
    Arg.(value & opt (some string) None
         & info [ "proof" ] ~docv:"FILE"
             ~doc:"On UNSAT, write the stitched cube→conquer→stitch DRAT \
                   stream (each refuted cube's clauses, then the \
                   case-split tree bottom-up to the empty clause).")
  in
  Cmd.v
    (Cmd.info "cube"
       ~doc:"Cube-and-conquer: lookahead-split the instance into cubes, \
             conquer them in parallel with work stealing and first-SAT \
             cancellation, and stitch per-cube refutations into one \
             checkable DRAT proof.")
    Term.(const run $ verbose_arg $ input_arg $ timeout_arg $ cubes $ jobs
          $ probe_limit $ proof_file)

(* --- serve ------------------------------------------------------------ *)

(* "HOST:PORT" (":PORT" and "PORT" bind every interface). *)
let parse_listen spec =
  match String.rindex_opt spec ':' with
  | None -> (
    match int_of_string_opt spec with
    | Some port -> ("0.0.0.0", port)
    | None -> failwith ("bad --listen " ^ spec ^ ": expected HOST:PORT"))
  | Some i -> (
    let host = String.sub spec 0 i in
    let host = if host = "" then "0.0.0.0" else host in
    match
      int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
    with
    | Some port -> (host, port)
    | None -> failwith ("bad --listen " ^ spec ^ ": expected HOST:PORT"))

let serve_cmd =
  let run verbose workers queue cache warm mode jobs share_lbd timeout
      deadline_ms sessions session_ttl_ms cube_conflicts cube_count cube_jobs
      cube_probe_limit dispatch_model trace_path trace_max_mb
      dispatch_admission listen unix_path stdio max_clients conn_buffer quota
      priority_floor tenant_specs =
    setup_logs verbose;
    let mode =
      match mode with
      | "direct" -> Server.Direct
      | "simplify" -> Server.Simplify
      | "portfolio" -> Server.Portfolio { jobs; share_lbd }
      | m -> failwith ("unknown mode: " ^ m ^ " (direct|simplify|portfolio)")
    in
    let cube =
      if cube_conflicts <= 0 then None
      else
        Some
          {
            Server.cube_trigger = cube_conflicts;
            cube_count;
            cube_jobs;
            cube_probe_limit;
          }
    in
    let policy =
      Option.map
        (fun path ->
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Dispatch.Policy.load_string s)
        dispatch_model
    in
    let trace =
      Option.map
        (fun path ->
          Dispatch.Tracelog.open_file
            ~max_bytes:(trace_max_mb * 1024 * 1024)
            path)
        trace_path
    in
    let dispatch =
      if policy = None && trace = None && not dispatch_admission then None
      else Some { Server.policy; trace; admission = dispatch_admission }
    in
    let config =
      {
        Server.workers;
        queue_capacity = queue;
        cache_capacity = cache;
        warm_capacity = warm;
        mode;
        limits = limits_of_timeout timeout;
        default_deadline = Option.map (fun ms -> ms /. 1000.0) deadline_ms;
        session_capacity = sessions;
        session_ttl =
          (match session_ttl_ms with
           | Some ms when ms <= 0.0 -> None (* 0 disables TTL eviction *)
           | ttl -> Option.map (fun ms -> ms /. 1000.0) ttl);
        cube;
        dispatch;
      }
    in
    let tenant_limits =
      List.map
        (fun spec ->
          match Net.Tenant.parse_spec spec with
          | Ok x -> x
          | Error msg -> failwith msg)
        tenant_specs
    in
    let net_config =
      {
        Net.Event_loop.default_config with
        max_clients;
        conn_buffer;
        default_limits = { Net.Tenant.quota; priority_floor };
        tenant_limits;
      }
    in
    let engine = Server.create ~config () in
    Fun.protect
      ~finally:(fun () ->
        Server.shutdown engine;
        Option.iter Dispatch.Tracelog.close trace)
      (fun () ->
        let loop = Net.Event_loop.create ~config:net_config engine in
        (match listen with
         | Some spec ->
           let host, port = parse_listen spec in
           let host, port = Net.Event_loop.add_tcp loop ~host ~port in
           Printf.printf "c listening on %s:%d\n%!" host port
         | None -> ());
        (match unix_path with
         | Some path ->
           Net.Event_loop.add_unix loop path;
           Printf.printf "c listening on unix:%s\n%!" path
         | None -> ());
        if stdio || (listen = None && unix_path = None) then
          Net.Event_loop.add_stdio loop;
        (* A client that vanishes mid-write must look like EPIPE on the
           loop's non-blocking write, never kill the process. *)
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let drain _ = Net.Event_loop.request_drain loop in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
        Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
        Net.Event_loop.run loop);
    0
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue capacity; further submissions are \
                   REJECTED (backpressure).")
  in
  let cache =
    Arg.(value & opt int 512
         & info [ "cache" ] ~docv:"N" ~doc:"Result cache capacity (LRU).")
  in
  let warm =
    Arg.(value & opt int 256
         & info [ "warm" ] ~docv:"N"
             ~doc:"Warm-start snapshot cache capacity (LRU): resubmitted \
                   formulas resume from the previous solve's learnt \
                   clauses, phases and activity order instead of \
                   restarting (0 disables; mode=direct only).")
  in
  let mode =
    Arg.(value & opt string "direct"
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Per-job solve mode: 'direct', 'simplify' (CNF \
                   simplification first), or 'portfolio' (each worker \
                   races a lane pool).")
  in
  let jobs =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Portfolio lanes per worker (mode=portfolio).")
  in
  let share_lbd =
    Arg.(value & opt int 4
         & info [ "share-lbd" ] ~docv:"LBD"
             ~doc:"Maximum glue of shared learnt clauses (mode=portfolio).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-job deadline when a SOLVE line gives none.")
  in
  let sessions =
    Arg.(value & opt int 64
         & info [ "sessions" ] ~docv:"N"
             ~doc:"Maximum live incremental sessions; OPEN past the \
                   bound LRU-evicts an idle session or is REJECTED.")
  in
  let session_ttl_ms =
    Arg.(value & opt (some float) (Some 600_000.0)
         & info [ "session-ttl-ms" ] ~docv:"MS"
             ~doc:"Evict sessions idle this long (0 disables).")
  in
  let cube_conflicts =
    Arg.(value & opt int 0
         & info [ "cube-conflicts" ] ~docv:"N"
             ~doc:"Hardness trigger for cube-and-conquer (mode=direct): a \
                   job still open after N conflicts is re-solved by \
                   cubing; its remaining budget is spent conquering \
                   cubes in parallel (0 disables cubing).")
  in
  let cube_count =
    Arg.(value & opt int 8
         & info [ "cubes" ] ~docv:"N"
             ~doc:"Target cube count per escalated job \
                   (--cube-conflicts).")
  in
  let cube_jobs =
    Arg.(value & opt int 4
         & info [ "cube-jobs" ] ~docv:"N"
             ~doc:"Worker domains conquering an escalated job's cubes \
                   (1 = sequential).")
  in
  let cube_probe_limit =
    Arg.(value & opt int 32
         & info [ "cube-probe-limit" ] ~docv:"N"
             ~doc:"Lookahead probe budget per cube-tree node \
                   (--cube-conflicts).")
  in
  let dispatch_model =
    Arg.(value & opt (some file) None
         & info [ "dispatch-model" ] ~docv:"FILE"
             ~doc:"Learned dispatch policy (from 'eda4sat dispatch \
                   train'): per job, extract cheap CNF features and \
                   let the model pick the route — plain direct lane, \
                   simplify first, race N portfolio lanes, or a cube \
                   budget (mode=direct only).")
  in
  let trace_path =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Append one JSONL training entry per completed job \
                   (features, decisions, outcome, latency) — the input \
                   of 'eda4sat dispatch train'.  Works with or without \
                   --dispatch-model.")
  in
  let trace_max_mb =
    Arg.(value & opt int 64
         & info [ "trace-max-mb" ] ~docv:"MB"
             ~doc:"Rotate the --trace file past this size (the old \
                   file moves to FILE.1).")
  in
  let dispatch_admission =
    Arg.(value & flag
         & info [ "dispatch-admission" ]
             ~doc:"Reject jobs whose --dispatch-model hardness \
                   prediction exceeds 4x their deadline (REJECTED \
                   predicted-timeout) instead of burning a worker on \
                   them.")
  in
  let listen =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Accept TCP connections on HOST:PORT (port 0 picks a \
                   free port; the bound address is announced as 'c \
                   listening on HOST:PORT').")
  in
  let unix_path =
    Arg.(value & opt (some string) None
         & info [ "unix" ] ~docv:"PATH"
             ~doc:"Accept connections on a Unix-domain socket at PATH.")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Also serve stdin/stdout as one more connection \
                   (implied when neither --listen nor --unix is \
                   given).")
  in
  let max_clients =
    Arg.(value & opt int 256
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Concurrent connections; further accepts answer \
                   REJECTED overloaded and close.")
  in
  let conn_buffer =
    Arg.(value & opt int (4 * 1024 * 1024)
         & info [ "conn-buffer" ] ~docv:"BYTES"
             ~doc:"Per-connection write-buffer bound.  Past half of it \
                   new commands are REJECTED overloaded; past all of \
                   it the slow client is disconnected.")
  in
  let quota =
    Arg.(value & opt int 0
         & info [ "quota" ] ~docv:"N"
             ~doc:"Default per-client in-flight command quota (0 = \
                   unlimited); commands past it answer REJECTED \
                   quota.")
  in
  let priority_floor =
    Arg.(value & opt int 0
         & info [ "priority-floor" ] ~docv:"P"
             ~doc:"Minimum effective priority of every submitted job.")
  in
  let tenant_specs =
    Arg.(value & opt_all string []
         & info [ "tenant" ] ~docv:"NAME=QUOTA[:FLOOR]"
             ~doc:"Per-client override of quota and priority floor \
                   (repeatable); clients declare themselves with the \
                   CLIENT verb.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the concurrent solve service over stdin/stdout, TCP \
             (--listen) and Unix-domain sockets (--unix): SOLVE <file> \
             [deadline_ms] [prio] per line, plus incremental sessions \
             (OPEN, then ADD/ASSUME/SOLVE/PUSH/POP/CLOSE <sid>), \
             PING/METRICS health probes and per-client quotas (CLIENT \
             <name>, --quota, --tenant); answers carry a cache/dedup \
             source tag; STATS prints a metrics JSON line; SIGTERM \
             drains gracefully.")
    Term.(const run $ verbose_arg $ workers $ queue $ cache $ warm $ mode
          $ jobs $ share_lbd $ timeout_arg $ deadline_ms $ sessions
          $ session_ttl_ms $ cube_conflicts $ cube_count $ cube_jobs
          $ cube_probe_limit $ dispatch_model $ trace_path $ trace_max_mb
          $ dispatch_admission $ listen $ unix_path $ stdio $ max_clients
          $ conn_buffer $ quota $ priority_floor $ tenant_specs)

(* --- dispatch -------------------------------------------------------- *)

let dispatch_train_cmd =
  let run verbose traces out epochs lr hidden seed =
    setup_logs verbose;
    let entries = List.concat_map Dispatch.Tracelog.read_file traces in
    Printf.printf "read %d trace entries from %d file(s)\n%!"
      (List.length entries) (List.length traces);
    let hidden =
      String.split_on_char ',' hidden
      |> List.filter_map (fun s ->
           match String.trim s with
           | "" -> None
           | s -> (
             match int_of_string_opt s with
             | Some n when n > 0 -> Some n
             | _ -> failwith ("bad --hidden layer width: " ^ s)))
      |> Array.of_list
    in
    let policy = Dispatch.Policy.create ~hidden ~seed () in
    let loss = Dispatch.Policy.train ~epochs ~lr ~seed policy entries in
    let oc = open_out out in
    output_string oc (Dispatch.Policy.save_string policy);
    close_out oc;
    let visited =
      Array.fold_left (fun n v -> if v > 0 then n + 1 else n) 0
        (Dispatch.Policy.visits policy)
    in
    Printf.printf
      "trained %d epochs (final loss %.4f, %d/10 heads visited)\n\
       model written to %s\n"
      epochs loss visited out
  in
  let traces =
    Arg.(non_empty & opt_all file []
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"JSONL trace from 'serve --trace' (repeatable).")
  in
  let out =
    Arg.(value & opt string "dispatch.model"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Model file to write.")
  in
  let epochs =
    Arg.(value & opt int 200
         & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let lr =
    Arg.(value & opt float 1e-3
         & info [ "lr" ] ~docv:"R" ~doc:"Adam learning rate.")
  in
  let hidden =
    Arg.(value & opt string "32,32"
         & info [ "hidden" ] ~docv:"W,W"
             ~doc:"Hidden layer widths, comma separated.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed of the initial weights and batch shuffles.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Fit a dispatch policy from serve --trace logs: a hardness \
             regressor plus per-route reward heads (simplify, lanes, \
             cube budget).")
    (returns_ok
       Term.(const run $ verbose_arg $ traces $ out $ epochs $ lr $ hidden
             $ seed))

let dispatch_predict_cmd =
  let run verbose input model_file =
    setup_logs verbose;
    let inst = read_instance input in
    let features =
      let base =
        Dispatch.Features.of_formula (Eda4sat.Instance.direct_formula inst)
      in
      match inst.Eda4sat.Instance.payload with
      | Eda4sat.Instance.Cnf _ -> base
      | Eda4sat.Instance.Circuit g ->
        Dispatch.Features.with_embedding base
          (Deepgate.Embedding.po_embedding g)
    in
    Array.iteri
      (fun i v ->
        if i < Array.length Dispatch.Features.names then
          Printf.printf "c %-24s %.6g\n" Dispatch.Features.names.(i) v)
      features;
    match model_file with
    | None -> Printf.printf "c no --model: static default decision\n"
    | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let policy = Dispatch.Policy.load_string s in
      let d = Dispatch.Policy.decide policy features in
      Printf.printf "decision: lanes=%d simplify=%b cube=%s\n" d.lanes
        d.simplify
        (match d.cube_trigger with
         | None -> "engine-default"
         | Some 0 -> "off"
         | Some n -> string_of_int n);
      if Float.is_finite d.predicted_ms then
        Printf.printf "predicted solve latency: %.1f ms\n" d.predicted_ms
      else Printf.printf "predicted solve latency: (hardness head untrained)\n"
  in
  let model =
    Arg.(value & opt (some file) None
         & info [ "model" ] ~docv:"FILE"
             ~doc:"Trained policy (from 'eda4sat dispatch train').")
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Print the dispatch feature vector of an instance and, with \
             --model, the route the policy would pick.")
    (returns_ok Term.(const run $ verbose_arg $ input_arg $ model))

let dispatch_cmd =
  Cmd.group
    (Cmd.info "dispatch"
       ~doc:"Learned dispatch: train a routing policy from serve traces \
             and inspect its per-instance decisions.")
    [ dispatch_train_cmd; dispatch_predict_cmd ]

(* --- preprocess ------------------------------------------------------ *)

let preprocess_cmd =
  let run verbose input output mapper recipe agent_file =
    setup_logs verbose;
    let inst = read_instance input in
    let agent = load_agent agent_file in
    let f, report =
      Eda4sat.Pipeline.transform (pipeline_config ~agent ~mapper ~recipe) inst
    in
    Cnf.Dimacs.write_file f output;
    Format.printf "%a@." Eda4sat.Pipeline.pp_report report;
    Printf.printf "recipe: %s\nwrote %s (%d vars, %d clauses)\n"
      (Synth.Recipe.to_string report.Eda4sat.Pipeline.recipe_used)
      output f.Cnf.Formula.num_vars
      (Cnf.Formula.num_clauses f)
  in
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Simplified DIMACS output.")
  in
  Cmd.v
    (Cmd.info "preprocess"
       ~doc:"Run Algorithm 1 and write the simplified CNF for an external \
             solver.")
    (returns_ok
       Term.(const run $ verbose_arg $ input_arg $ output_arg $ mapper_arg
             $ recipe_arg $ agent_arg))

(* --- train ----------------------------------------------------------- *)

let train_cmd =
  let run episodes out scale count =
    let instances = Workloads.Suites.training_set ~scale ~count () in
    Printf.printf "training on %d generated LEC miters, %d episodes...\n%!"
      count episodes;
    let agent, history =
      Eda4sat.Trainer.train instances ~episodes
        ~on_episode:(fun p ->
          if p.Eda4sat.Trainer.episode mod 10 = 0 then
            Printf.printf "  episode %4d reward %+.3f\n%!"
              p.Eda4sat.Trainer.episode p.Eda4sat.Trainer.reward)
    in
    Printf.printf "final 20-episode average reward: %+.3f\n"
      (Eda4sat.Trainer.average_reward history 20);
    let oc = open_out out in
    output_string oc (Rl.Dqn.save_string agent);
    close_out oc;
    Printf.printf "weights written to %s\n" out
  in
  let episodes =
    Arg.(value & opt int 200
         & info [ "episodes" ] ~docv:"N" ~doc:"Training episodes.")
  in
  let out =
    Arg.(value & opt string "agent.weights"
         & info [ "out" ] ~docv:"FILE" ~doc:"Weight file to write.")
  in
  let scale =
    Arg.(value & opt float 0.4
         & info [ "scale" ] ~docv:"S" ~doc:"Training instance size scale.")
  in
  let count =
    Arg.(value & opt int 24
         & info [ "count" ] ~docv:"N" ~doc:"Training instance count.")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train the RL logic-synthesis agent (§3.2).")
    (returns_ok Term.(const run $ episodes $ out $ scale $ count))

(* --- generate -------------------------------------------------------- *)

let generate_cmd =
  let run family out seed size =
    match family with
    | "lec" ->
      let g =
        Workloads.Lec.generate ~seed ~num_pis:24 ~num_ands:size ()
      in
      Aig.Aiger_io.write_file g out;
      Printf.printf "wrote LEC miter %s (%d ANDs)\n" out (Aig.Graph.num_ands g)
    | "php" ->
      Cnf.Dimacs.write_file
        (Workloads.Satcomp.pigeonhole ~pigeons:size ~holes:(size - 1))
        out;
      Printf.printf "wrote php(%d,%d) to %s\n" size (size - 1) out
    | "r3sat" ->
      Cnf.Dimacs.write_file
        (Workloads.Satcomp.random_ksat ~seed ~num_vars:size
           ~num_clauses:(size * 9 / 2) ~k:3)
        out;
      Printf.printf "wrote random 3-SAT to %s\n" out
    | "xor" ->
      Cnf.Dimacs.write_file
        (Workloads.Satcomp.xor_cnf ~seed ~num_vars:size
           ~num_xors:(size * 19 / 20) ~width:4)
        out;
      Printf.printf "wrote CNF-XOR to %s\n" out
    | "coloring" ->
      Cnf.Dimacs.write_file
        (Workloads.Satcomp.coloring ~seed ~vertices:size
           ~edges:(size * 23 / 10) ~colors:3)
        out;
      Printf.printf "wrote 3-coloring to %s\n" out
    | "roundrobin" ->
      Cnf.Dimacs.write_file (Workloads.Satcomp.round_robin ~teams:size ()) out;
      Printf.printf "wrote round-robin(%d) to %s\n" size out
    | f -> failwith ("unknown family: " ^ f)
  in
  let family =
    Arg.(
      value & opt string "lec"
      & info [ "family" ] ~docv:"NAME"
          ~doc:"lec | php | r3sat | xor | coloring | roundrobin")
  in
  let out =
    Arg.(value & opt string "instance.cnf"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let size =
    Arg.(value & opt int 500
         & info [ "size" ] ~docv:"N" ~doc:"Family-specific size parameter.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate benchmark instances to files.")
    (returns_ok Term.(const run $ family $ out $ seed $ size))

(* --- tables ----------------------------------------------------------- *)

let tables_cmd =
  let run table scale timeout agent_file episodes =
    let ctx =
      {
        Experiments.Tables.default_ctx with
        Experiments.Tables.scale;
        limits = limits_of_timeout timeout;
      }
    in
    let ctx =
      match (load_agent agent_file, episodes) with
      | Some a, _ -> { ctx with Experiments.Tables.agent = Some a }
      | None, Some n ->
        Printf.printf "training an agent for %d episodes...\n%!" n;
        { ctx with
          Experiments.Tables.agent =
            Some (Experiments.Tables.train_agent ~episodes:n ctx) }
      | None, None -> ctx
    in
    match table with
    | None -> print_string (Experiments.Tables.run_all ctx)
    | Some n ->
      let t =
        match n with
        | 1 -> Experiments.Tables.table1 ctx
        | 2 -> Experiments.Tables.table2 ctx
        | 3 -> Experiments.Tables.table3 ctx
        | 4 -> Experiments.Tables.table4 ctx
        | 5 -> Experiments.Tables.table5 ctx
        | 6 -> Experiments.Tables.table6 ctx
        | 7 -> Experiments.Tables.table7 ctx
        | _ -> failwith "tables are numbered 1..7"
      in
      print_string (Experiments.Table.render t)
  in
  let table =
    Arg.(value & opt (some int) None
         & info [ "table" ] ~docv:"N" ~doc:"Regenerate one table (1..7).")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "scale" ] ~docv:"S" ~doc:"Workload size scale.")
  in
  let episodes =
    Arg.(value & opt (some int) None
         & info [ "train-episodes" ] ~docv:"N"
             ~doc:"Train a fresh agent for the RL columns.")
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables and figures.")
    (returns_ok
       Term.(const run $ table $ scale $ timeout_arg $ agent_arg $ episodes))

(* --- map --------------------------------------------------------------- *)

let map_cmd =
  let run input output mapper recipe agent_file =
    let inst = read_instance input in
    let agent = load_agent agent_file in
    let cfg = pipeline_config ~agent ~mapper ~recipe in
    let g0 = Eda4sat.Instance.to_aig inst in
    let g =
      match cfg.Eda4sat.Pipeline.recipe with
      | Eda4sat.Pipeline.Fixed ops -> Synth.Recipe.apply_sequence ops g0
      | _ -> Synth.Recipe.apply_sequence Synth.Recipe.compress2 g0
    in
    let nl = Lutmap.Mapper.run ~config:cfg.Eda4sat.Pipeline.mapper g in
    Lutmap.Blif.write_file nl output;
    Format.printf "mapped: %a -> %a; wrote %s@." Aig.Graph.pp_stats g0
      Lutmap.Netlist.pp_stats nl output
  in
  let output_arg =
    Arg.(
      value & opt string "mapped.blif"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"BLIF output file.")
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Synthesize and LUT-map an instance, writing a BLIF netlist.")
    (returns_ok
       Term.(const run $ input_arg $ output_arg $ mapper_arg $ recipe_arg
             $ agent_arg))

(* 'solve' and 'portfolio' carry SAT-competition exit codes; every
   other command evaluates to 0 on success.  [Cmd.eval'] propagates
   the integer verbatim. *)
let () =
  let doc = "EDA-driven preprocessing for SAT solving" in
  let info = Cmd.info "eda4sat" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
                     [ solve_cmd; portfolio_cmd; cube_cmd; serve_cmd;
                       dispatch_cmd; preprocess_cmd; train_cmd; generate_cmd;
                       tables_cmd; map_cmd ]))
