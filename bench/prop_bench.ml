(* Propagation-throughput micro-benchmark for the CDCL core.

     dune exec bench/prop_bench.exe
     dune exec bench/prop_bench.exe -- --json BENCH_sat_arena.json
     dune exec bench/prop_bench.exe -- --check BENCH_sat_arena.json

   Reports decisions, conflicts, propagations, propagations/sec and
   minor-heap words per conflict for a small set of propagation-bound
   instances, so solver-engine changes can be compared before/after
   (see ISSUE acceptance criteria).

   [--json PATH] writes the php measurements (plus the frozen
   record-clause PR-2 baseline) to PATH; [--check PATH] re-measures and
   fails (exit 1) if fresh props/sec regressed more than 10% below the
   committed numbers — the CI soft check. *)

type measurement = {
  m_name : string;
  verdict : string;
  time : float;
  decisions : int;
  conflicts : int;
  propagations : int;
  props_per_sec : float;
  mw_per_conflict : float;
  probed : int;
  vivified : int;
  inproc_subsumed : int;
}

let measure ?(repeat = 1) ?inprocess name f =
  (* Best-of-n: the trajectory is deterministic, so repeats only shave
     scheduler/GC noise off the timing. *)
  let best = ref None in
  for _ = 1 to repeat do
    let result, st = Sat.Solver.solve ?inprocess f in
    let verdict =
      match result with
      | Sat.Solver.Sat _ -> "SAT"
      | Sat.Solver.Unsat -> "UNSAT"
      | Sat.Solver.Unknown -> "UNKNOWN"
    in
    let props_per_sec =
      if st.Sat.Solver.time > 0.0 then
        float_of_int st.Sat.Solver.propagations /. st.Sat.Solver.time
      else 0.0
    in
    let m =
      {
        m_name = name;
        verdict;
        time = st.Sat.Solver.time;
        decisions = st.Sat.Solver.decisions;
        conflicts = st.Sat.Solver.conflicts;
        propagations = st.Sat.Solver.propagations;
        props_per_sec;
        mw_per_conflict =
          st.Sat.Solver.minor_words
          /. float_of_int (max 1 st.Sat.Solver.conflicts);
        probed = st.Sat.Solver.probed;
        vivified = st.Sat.Solver.vivified;
        inproc_subsumed = st.Sat.Solver.inproc_subsumed;
      }
    in
    match !best with
    | Some b when b.props_per_sec >= m.props_per_sec -> ()
    | _ -> best := Some m
  done;
  Option.get !best

let report m =
  Printf.printf
    "%-28s %-8s time=%8.3fs decisions=%8d conflicts=%8d props=%10d \
     props/sec=%12.0f mw/conflict=%8.1f\n%!"
    m.m_name m.verdict m.time m.decisions m.conflicts m.propagations
    m.props_per_sec m.mw_per_conflict

let run ?repeat name f = report (measure ?repeat name f)

(* Pure-propagation workloads with a trajectory that is independent of
   propagation order: a unit literal triggers one long implication
   chain, so wall time measures propagation throughput alone. *)

let binary_chain n =
  let clauses =
    [| 1 |] :: List.init (n - 1) (fun i -> [| -(i + 1); i + 2 |])
  in
  Cnf.Formula.create ~num_vars:n clauses

let wide_chain n =
  (* Chain clauses padded with four dummy literals forced false, so
     every propagation walks the long-clause watcher machinery. *)
  let d = n + 1 in
  let dummies = List.init 4 (fun i -> [| -(d + i) |]) in
  let chain =
    List.init (n - 1) (fun i ->
        [| -(i + 1); i + 2; d + (i mod 4); d + ((i + 1) mod 4) |])
  in
  Cnf.Formula.create ~num_vars:(n + 4) (([| 1 |] :: dummies) @ chain)

(* --- the tracked php instances ------------------------------------- *)

let php_instances =
  [
    ("php(7,6)", fun () -> Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6);
    ("php(8,7)", fun () -> Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
  ]

(* PR-2 record-clause baseline, measured on the reference host with
   bench/prop_bench.ml before the arena rewrite (mean of 3 runs). *)
let record_baseline =
  [
    ("php(7,6)", (1_540_000.0, 364.7));
    ("php(8,7)", (650_000.0, 415.0));
  ]

let measure_php ?inprocess () =
  List.map
    (fun (name, mk) -> measure ~repeat:5 ?inprocess name (mk ()))
    php_instances

(* Eager settings so the small tracked instances run all three passes
   every restart — this measures the overhead ceiling, not the
   production default (interval 4). *)
let bench_inprocess =
  { Sat.Solver.default_inprocess with Sat.Solver.inproc_interval = 1 }

(* --- JSON writing (no library: the schema is flat) ------------------ *)

let write_json path ms =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"eda4sat-prop-bench-v1\",\n";
  Buffer.add_string buf
    "  \"note\": \"props/sec and minor-heap words per conflict on the php \
     suite; record_baseline is the frozen PR-2 record-clause solver, arena \
     is the current flat-arena solver\",\n";
  Buffer.add_string buf "  \"record_baseline\": {\n";
  List.iteri
    (fun i (name, (pps, mwc)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: { \"props_per_sec\": %.0f, \
            \"minor_words_per_conflict\": %.1f }%s\n"
           name pps mwc
           (if i < List.length record_baseline - 1 then "," else "")))
    record_baseline;
  Buffer.add_string buf "  },\n  \"arena\": {\n";
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: { \"props_per_sec\": %.0f, \
            \"minor_words_per_conflict\": %.1f, \"conflicts\": %d, \
            \"propagations\": %d }%s\n"
           m.m_name m.props_per_sec m.mw_per_conflict m.conflicts
           m.propagations
           (if i < List.length ms - 1 then "," else "")))
    ms;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* The inprocessing variant file: off vs on over the same suite, so the
   overhead of probe/vivify/subsume passes is tracked like the arena
   rewrite is. *)
let write_inproc_json path ~off ~on =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"eda4sat-inproc-bench-v1\",\n";
  Buffer.add_string buf
    "  \"note\": \"php suite with restart-boundary inprocessing off vs on \
     (inproc_interval=1, the overhead ceiling); the CI gate tracks the \
     inprocess section's props/sec\",\n";
  let section key ms last =
    Buffer.add_string buf (Printf.sprintf "  %S: {\n" key);
    List.iteri
      (fun i m ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: { \"props_per_sec\": %.0f, \
              \"minor_words_per_conflict\": %.1f, \"conflicts\": %d, \
              \"probed\": %d, \"vivified\": %d, \"inproc_subsumed\": %d }%s\n"
             m.m_name m.props_per_sec m.mw_per_conflict m.conflicts m.probed
             m.vivified m.inproc_subsumed
             (if i < List.length ms - 1 then "," else "")))
      ms;
    Buffer.add_string buf (if last then "  }\n" else "  },\n")
  in
  section "off" off false;
  section "inprocess" on true;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- regression check against a committed JSON ---------------------- *)

(* Minimal scanner: finds the [section] object, then for each instance
   the number following its "props_per_sec" key.  Good enough for the
   files this tool itself writes. *)
let committed_pps ?(section = "arena") json name =
  let find_from pos needle =
    let n = String.length needle and len = String.length json in
    let rec go i =
      if i + n > len then None
      else if String.sub json i n = needle then Some (i + n)
      else go (i + 1)
    in
    go pos
  in
  match find_from 0 (Printf.sprintf "%S" section) with
  | None -> None
  | Some a -> (
    match find_from a (Printf.sprintf "%S" name) with
    | None -> None
    | Some b -> (
      match find_from b "\"props_per_sec\":" with
      | None -> None
      | Some c ->
        let i = ref c in
        let len = String.length json in
        while !i < len && json.[!i] = ' ' do
          incr i
        done;
        let start = !i in
        while
          !i < len
          &&
          match json.[!i] with '0' .. '9' | '.' | '-' -> true | _ -> false
        do
          incr i
        done;
        if !i > start then
          float_of_string_opt (String.sub json start (!i - start))
        else None))

let check_against ?section path ms =
  let ic = open_in path in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let tolerance = 0.10 in
  let failed = ref false in
  List.iter
    (fun m ->
      match committed_pps ?section json m.m_name with
      | None ->
        Printf.printf "CHECK %-12s no committed number found — skipped\n"
          m.m_name
      | Some committed ->
        let floor = committed *. (1.0 -. tolerance) in
        let ok = m.props_per_sec >= floor in
        Printf.printf
          "CHECK %-12s fresh %12.0f props/sec vs committed %12.0f (floor \
           %12.0f): %s\n"
          m.m_name m.props_per_sec committed floor
          (if ok then "OK" else "REGRESSED");
        if not ok then failed := true)
    ms;
  if !failed then begin
    Printf.printf "prop_bench check FAILED: props/sec regressed >10%%\n%!";
    exit 1
  end
  else Printf.printf "prop_bench check passed\n%!"

let arg_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  match
    ( arg_value "--json",
      arg_value "--check",
      arg_value "--inprocess-json",
      arg_value "--inprocess-check" )
  with
  | Some path, _, _, _ ->
    let ms = measure_php () in
    List.iter report ms;
    write_json path ms
  | None, Some path, _, _ ->
    let ms = measure_php () in
    List.iter report ms;
    check_against path ms
  | None, None, Some path, _ ->
    let off = measure_php () in
    let on = measure_php ~inprocess:bench_inprocess () in
    List.iter report off;
    List.iter report on;
    write_inproc_json path ~off ~on
  | None, None, None, Some path ->
    let ms = measure_php ~inprocess:bench_inprocess () in
    List.iter report ms;
    check_against ~section:"inprocess" path ms
  | None, None, None, None ->
    run "binary-chain(300k)" (binary_chain 300_000);
    run "wide-chain(150k)" (wide_chain 150_000);
    run ~repeat:3 "php(7,6)" (Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6);
    run ~repeat:3 "php(8,7)" (Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
    run "random3sat(n=140,m=595)"
      (Workloads.Satcomp.random_ksat ~seed:7 ~num_vars:140 ~num_clauses:595
         ~k:3);
    run "xor(n=40,x=36,w=4)"
      (Workloads.Satcomp.xor_cnf ~seed:11 ~num_vars:40 ~num_xors:36 ~width:4);
    run "round_robin(teams=8,weeks=6)"
      (Workloads.Satcomp.round_robin ~weeks:6 ~teams:8 ())
