(* Propagation-throughput micro-benchmark for the CDCL core.

     dune exec bench/prop_bench.exe

   Reports decisions, conflicts, propagations and propagations/sec for
   a small set of propagation-bound instances, so solver-engine changes
   can be compared before/after (see ISSUE acceptance criteria). *)

let run name f =
  let result, st = Sat.Solver.solve f in
  let verdict =
    match result with
    | Sat.Solver.Sat _ -> "SAT"
    | Sat.Solver.Unsat -> "UNSAT"
    | Sat.Solver.Unknown -> "UNKNOWN"
  in
  let props_per_sec =
    if st.Sat.Solver.time > 0.0 then
      float_of_int st.Sat.Solver.propagations /. st.Sat.Solver.time
    else 0.0
  in
  Printf.printf
    "%-28s %-8s time=%8.3fs decisions=%8d conflicts=%8d props=%10d props/sec=%12.0f\n%!"
    name verdict st.Sat.Solver.time st.Sat.Solver.decisions
    st.Sat.Solver.conflicts st.Sat.Solver.propagations props_per_sec

(* Pure-propagation workloads with a trajectory that is independent of
   propagation order: a unit literal triggers one long implication
   chain, so wall time measures propagation throughput alone. *)

let binary_chain n =
  let clauses =
    [| 1 |] :: List.init (n - 1) (fun i -> [| -(i + 1); i + 2 |])
  in
  Cnf.Formula.create ~num_vars:n clauses

let wide_chain n =
  (* Chain clauses padded with four dummy literals forced false, so
     every propagation walks the long-clause watcher machinery. *)
  let d = n + 1 in
  let dummies = List.init 4 (fun i -> [| -(d + i) |]) in
  let chain =
    List.init (n - 1) (fun i ->
        [| -(i + 1); i + 2; d + (i mod 4); d + ((i + 1) mod 4) |])
  in
  Cnf.Formula.create ~num_vars:(n + 4) (([| 1 |] :: dummies) @ chain)

let () =
  run "binary-chain(300k)" (binary_chain 300_000);
  run "wide-chain(150k)" (wide_chain 150_000);
  run "php(7,6)" (Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6);
  run "php(8,7)" (Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
  run "random3sat(n=140,m=595)"
    (Workloads.Satcomp.random_ksat ~seed:7 ~num_vars:140 ~num_clauses:595 ~k:3);
  run "xor(n=40,x=36,w=4)"
    (Workloads.Satcomp.xor_cnf ~seed:11 ~num_vars:40 ~num_xors:36 ~width:4);
  run "round_robin(teams=8,weeks=6)"
    (Workloads.Satcomp.round_robin ~weeks:6 ~teams:8 ())
