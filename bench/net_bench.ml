(* Socket front-end throughput harness.

     dune exec bench/net_bench.exe
     dune exec bench/net_bench.exe -- --workers 4 --clients 8 --jobs 240
     dune exec bench/net_bench.exe -- --check BENCH_net.json

   Three measurements against the same engine configuration:

   - connection setup rate: sequential connect + PING/PONG + close
     round-trips against a live event loop, in connections/sec.
   - stdin baseline: every job pushed through the single-stream
     channel transport ({!Server.Protocol.serve} over a pipe pair —
     exactly what `serve` without --listen does), fully pipelined.
   - N-client aggregate: the same job count split over N concurrent
     TCP connections into one {!Net.Event_loop}, each client a domain
     that writes its SOLVE batch and reads its ordered answers.

   Every job is a distinct random 3-SAT instance near the phase
   transition (distinct fingerprints — the result cache and in-flight
   dedup cannot shortcut either pass), and each pass gets a fresh
   engine so neither warms the other's cache.  Both transports
   saturate the same worker pool, so the multi-client figure shows the
   event loop's per-connection framing/dispatch costs the pipeline
   nothing versus the raw pipe.

   Results go to BENCH_net.json ([--json PATH] redirects); [--check
   PATH] re-measures and exits 1 if the multi-client/stdin ratio fell
   below the 0.85 floor or more than 15% below the committed number —
   the CI soft gate. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let workers = arg_value "--workers" int_of_string 4
let clients = arg_value "--clients" int_of_string 8
let jobs = arg_value "--jobs" int_of_string 240
let conns = arg_value "--conns" int_of_string 100
let check_path = arg_value "--check" Option.some None
let json_path = arg_value "--json" Fun.id "BENCH_net.json"

(* One CNF file per (pass, job): ~1 ms instances, distinct seeds. *)
let bench_dir =
  let d = Filename.temp_file "net_bench" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let job_file pass j =
  let path = Filename.concat bench_dir (Printf.sprintf "%s_%d.cnf" pass j) in
  let f =
    Workloads.Satcomp.random_ksat
      ~seed:((Hashtbl.hash pass * 7919) + j)
      ~num_vars:60 ~num_clauses:250 ~k:3
  in
  Cnf.Dimacs.write_file f path;
  path

let engine_config () =
  {
    Server.default_config with
    Server.workers;
    queue_capacity = max 64 (2 * jobs);
    cache_capacity = 2 * jobs;
  }

(* --- client-side plumbing -------------------------------------------- *)

let send fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let read_to_eof fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ();
  Buffer.contents buf

let count_answers s =
  let lines = String.split_on_char '\n' s in
  List.length
    (List.filter
       (fun l -> l = "SAT" || l = "UNSAT" || l = "TIMEOUT")
       lines)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let with_loop f =
  let engine = Server.create ~config:(engine_config ()) () in
  let loop = Net.Event_loop.create engine in
  let _, port = Net.Event_loop.add_tcp loop ~host:"127.0.0.1" ~port:0 in
  let runner = Domain.spawn (fun () -> Net.Event_loop.run loop) in
  Fun.protect
    ~finally:(fun () ->
      Net.Event_loop.request_drain loop;
      Domain.join runner;
      Server.shutdown engine)
    (fun () -> f port)

(* --- passes ---------------------------------------------------------- *)

(* Sequential connect / PING / PONG / close round-trips. *)
let run_setup_rate () =
  with_loop @@ fun port ->
  let t0 = Sat.Wall.now () in
  for _ = 1 to conns do
    let fd = connect port in
    send fd "PING\n";
    let b = Bytes.create 16 in
    ignore (Unix.read fd b 0 16);
    Unix.close fd
  done;
  float_of_int conns /. (Sat.Wall.now () -. t0)

(* All jobs through one Protocol.serve over a pipe pair — the stdin
   transport verbatim, minus the terminal. *)
let run_stdin_baseline files =
  let engine = Server.create ~config:(engine_config ()) () in
  let r_cmd, w_cmd = Unix.pipe () in
  let r_ans, w_ans = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr r_cmd in
        let oc = Unix.out_channel_of_descr w_ans in
        Server.Protocol.serve engine ic oc;
        close_out oc)
  in
  let t0 = Sat.Wall.now () in
  let writer =
    Domain.spawn (fun () ->
        List.iter (fun f -> send w_cmd ("SOLVE " ^ f ^ "\n")) files;
        send w_cmd "QUIT\n";
        Unix.close w_cmd)
  in
  let out = read_to_eof r_ans in
  Domain.join writer;
  Domain.join server;
  Unix.close r_ans;
  Server.shutdown engine;
  let wall = Sat.Wall.now () -. t0 in
  let got = count_answers out in
  if got <> List.length files then
    failwith
      (Printf.sprintf "stdin baseline: %d answers for %d jobs" got
         (List.length files));
  float_of_int (List.length files) /. wall

(* The same job count over [n] concurrent TCP connections; each client
   writes its whole batch, then drains its ordered answers. *)
let run_multi_client n files =
  with_loop @@ fun port ->
  let batches = Array.make n [] in
  List.iteri (fun i f -> batches.(i mod n) <- f :: batches.(i mod n)) files;
  let t0 = Sat.Wall.now () in
  let doms =
    Array.to_list
      (Array.mapi
         (fun i batch ->
           Domain.spawn (fun () ->
               let fd = connect port in
               send fd (Printf.sprintf "CLIENT bench%d\n" i);
               List.iter (fun f -> send fd ("SOLVE " ^ f ^ "\n")) batch;
               send fd "QUIT\n";
               let out = read_to_eof fd in
               Unix.close fd;
               count_answers out))
         batches)
  in
  let got = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  let wall = Sat.Wall.now () -. t0 in
  if got <> List.length files then
    failwith
      (Printf.sprintf "multi-client: %d answers for %d jobs" got
         (List.length files));
  float_of_int (List.length files) /. wall

let json_number json key =
  let needle = "\"" ^ key ^ "\": " in
  let n = String.length needle and len = String.length json in
  let rec find i =
    if i + n > len then None
    else if String.sub json i n = needle then Some (i + n)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < len
      && (match json.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub json i (!j - i))

let () =
  Printf.printf
    "net bench: %d jobs, %d workers, %d clients, %d setup conns\n%!" jobs
    workers clients conns;
  let setup_rate = run_setup_rate () in
  Printf.printf "connection setup: %.0f conns/sec\n%!" setup_rate;
  let stdin_files = List.init jobs (job_file "stdin") in
  let stdin_rate = run_stdin_baseline stdin_files in
  Printf.printf "stdin baseline:   %.0f jobs/sec (1 pipe stream)\n%!"
    stdin_rate;
  let multi_files = List.init jobs (job_file "multi") in
  let multi_rate = run_multi_client clients multi_files in
  Printf.printf "multi-client:     %.0f jobs/sec (%d connections)\n%!"
    multi_rate clients;
  let ratio = multi_rate /. stdin_rate in
  Printf.printf "multi/stdin ratio: %.2f\n%!" ratio;
  match check_path with
  | None ->
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"workers\": %d,\n\
      \  \"clients\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"setup_conns_per_sec\": %.0f,\n\
      \  \"stdin_jobs_per_sec\": %.0f,\n\
      \  \"multi_client_jobs_per_sec\": %.0f,\n\
      \  \"multi_vs_stdin\": %.2f\n\
       }\n"
      workers clients jobs setup_rate stdin_rate multi_rate ratio;
    close_out oc;
    print_endline ("wrote " ^ json_path)
  | Some path ->
    let ic = open_in path in
    let json = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let committed key =
      match json_number json key with
      | Some v -> v
      | None -> failwith (key ^ " missing from " ^ path)
    in
    let base = committed "multi_vs_stdin" in
    Printf.printf "committed: %.2f multi/stdin\nfresh:     %.2f\n%!" base
      ratio;
    (* Both transports saturate the same worker pool, so the honest
       expectation is parity; the floor catches the event loop turning
       into a bottleneck, with slack for shared-runner noise. *)
    if ratio < 0.85 then begin
      Printf.printf
        "net_bench check FAILED: multi-client below 0.85x of stdin\n";
      exit 1
    end
    else if ratio < 0.85 *. base then begin
      Printf.printf
        "net_bench check FAILED: ratio regressed >15%% vs committed\n";
      exit 1
    end
    else Printf.printf "net_bench check passed\n%!"
