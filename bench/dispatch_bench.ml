(* Learned-dispatch harness: does the policy picked per job beat the
   static default on instances it never trained on?

     dune exec bench/dispatch_bench.exe
     dune exec bench/dispatch_bench.exe -- --workers 4 --scale 0.5
     dune exec bench/dispatch_bench.exe -- --check BENCH_dispatch.json

   The php/LEC/random suite is twin pairs: each instance appears once
   canonically and once variable-permuted and clause-shuffled.  The
   permuted twins form the training half; they are solved through the
   competitive static configurations (plain direct and simplify-first
   — see [static_routes] for why dominated routes stay out of the
   trace), with every completion appended to one trace file, exactly
   the JSONL a `serve --trace` fleet would produce.  A policy is
   trained on that trace, and the held-out half is then solved twice
   on the same worker budget: through a static direct engine and
   through an engine carrying the model.  Reported per instance and as
   the geometric-mean ratio static/dispatch (>= 1.0 means the learned
   routing pays for itself), together with the per-decision inference
   cost, which must stay far under the solve walls it arbitrates.

   Results go to BENCH_dispatch.json ([--json PATH] redirects);
   [--check PATH] re-measures and exits 1 if a verdict diverged, the
   dispatch ledger stopped reconciling, inference crossed 1 ms, or the
   geomean collapsed versus the committed figure — the CI soft gate. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let workers = arg_value "--workers" int_of_string 2
let scale = arg_value "--scale" float_of_string 1.0
let timeout = arg_value "--timeout" float_of_string 60.0
let epochs = arg_value "--epochs" int_of_string 2000
let lr = arg_value "--lr" float_of_string 3e-3
let check_path = arg_value "--check" Option.some None
let json_path = arg_value "--json" Fun.id "BENCH_dispatch.json"
let dim n = max 4 (int_of_float (float_of_int n *. scale))
let limits = { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some timeout }

let php n = Workloads.Satcomp.pigeonhole ~pigeons:n ~holes:(n - 1)

let r3sat seed nvars =
  Workloads.Satcomp.random_ksat ~seed ~num_vars:nvars
    ~num_clauses:(int_of_float (float_of_int nvars *. 4.26)) ~k:3

(* Variable renaming plus clause shuffle: the solver sees a genuinely
   different DIMACS file (different fingerprint, different search),
   while every dispatch feature — all are invariant under renaming and
   clause order — stays bit-identical.  Each eval instance below is
   the canonical member of a family; its training twin is a permuted
   sibling, so the policy must route the held-out instance from
   feature identity alone, never from having solved it. *)
let permute seed (f : Cnf.Formula.t) =
  let rng = Aig.Rng.create seed in
  let n = f.Cnf.Formula.num_vars in
  let perm = Array.init (n + 1) Fun.id in
  for i = n downto 2 do
    let j = 1 + Aig.Rng.int rng i in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let f = Cnf.Formula.map_vars f ~f:(fun v -> perm.(v)) ~num_vars:n in
  let cls = Array.map Array.copy f.Cnf.Formula.clauses in
  let m = Array.length cls in
  for i = m - 1 downto 1 do
    let j = Aig.Rng.int rng (i + 1) in
    let t = cls.(i) in
    cls.(i) <- cls.(j);
    cls.(j) <- t
  done;
  { Cnf.Formula.num_vars = n; clauses = cls }

(* Twin pairs, split even/odd: the permuted sibling trains, the
   canonical instance is held out.  Sub-millisecond families (parity,
   small php) are excluded — their walls are pure timing noise. *)
let full_suite =
  let twins name seed f = [ (name ^ "-shuf", permute seed f); (name, f) ] in
  List.concat
    [
      twins "php(8,7)" 33 (php 8);
      twins "lec-miter-3" 41
        (Workloads.Suites.miter_cnf ~seed:3 ~num_ands:(dim 260));
      twins "r3sat-4" 42 (r3sat 4 (dim 140));
      twins "php(9,8)" 11 (php 9);
      twins "lec-miter-5" 43
        (Workloads.Suites.miter_cnf ~seed:5 ~num_ands:(dim 300));
      twins "r3sat-5" 44 (r3sat 5 (dim 150));
      twins "lec-miter-7" 45
        (Workloads.Suites.miter_cnf ~seed:7 ~num_ands:(dim 340));
      twins "r3sat-6" 46 (r3sat 6 (dim 160));
    ]

let split_halves l =
  List.fold_left
    (fun (i, tr, ev) x ->
      if i mod 2 = 0 then (i + 1, x :: tr, ev) else (i + 1, tr, x :: ev))
    (0, [], []) l
  |> fun (_, tr, ev) -> (List.rev tr, List.rev ev)

let train_suite, eval_suite = split_halves full_suite

let verdict_name = function
  | Server.Sat _ -> "SAT"
  | Server.Unsat -> "UNSAT"
  | Server.Timeout -> "TIMEOUT"
  | Server.Failed _ -> "FAILED"

let ok = function
  | Ok v -> v
  | Error r -> failwith ("rejected: " ^ r)

let geomean = function
  | [] -> 1.0
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
      /. float_of_int (List.length xs))

let base_config =
  {
    Server.workers;
    queue_capacity = 64;
    cache_capacity = 64;
    warm_capacity = 0;
    mode = Server.Direct;
    limits;
    default_deadline = None;
    session_capacity = 8;
    session_ttl = None;
    cube = None;
    dispatch = None;
  }

let with_engine config f =
  let e = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown e) (fun () -> f e)

let solve_wall e f =
  let a = ok (Server.solve e f) in
  (verdict_name a.Server.verdict, a.Server.solve_wall)

(* Best of [reps] fresh solves (the verdict is dropped between runs;
   warm starts are off, so every run is cold): sub-10ms walls swing
   enough run to run to drown the routing signal otherwise. *)
let reps = 5

let solve_best e f =
  let rec go i (v, best) =
    if i >= reps then (v, best)
    else begin
      Server.forget_verdict e (Cnf.Fingerprint.of_formula f);
      let v', s = solve_wall e f in
      if v' <> v then failwith "verdict flipped between repetitions";
      go (i + 1) (v, min best s)
    end
  in
  go 1 (solve_wall e f)

(* Interleaved best-of-[reps] on two engines: repetitions alternate
   static/dispatch so machine drift (turbo droop, page cache, a
   background burst) lands on both sides of every pair instead of on
   whichever engine happened to run second. *)
let solve_pair e_static e_dispatch f =
  let fp = Cnf.Fingerprint.of_formula f in
  let one e =
    Server.forget_verdict e fp;
    solve_wall e f
  in
  let vs, s0 = one e_static in
  let vd, d0 = one e_dispatch in
  if vs <> vd then
    failwith (Printf.sprintf "dispatch verdict %s != static %s" vd vs);
  let rec go i (bs, bd) =
    if i >= reps then (vs, bs, bd)
    else begin
      let vs', s = one e_static in
      let vd', d = one e_dispatch in
      if vs' <> vs || vd' <> vd then
        failwith "verdict flipped between repetitions";
      go (i + 1) (min bs s, min bd d)
    end
  in
  go 1 (s0, d0)

(* --- phase 1: trace the training half through each static route ----- *)

(* The traced fleet covers the two routes that ever win on this
   suite.  The policy's decision heads regress pooled marginal
   rewards: every traced route lands in the "off" class of every
   attribute it does not set, so tracing a dominated route (4-lane
   races and 2k-conflict cube budgets lose on all eight families
   here) only pollutes the other heads' baselines — e.g. cube-off
   would inherit the slow race walls and make cube-on look good.
   With lanes > 1 and cube never traced, those heads fall back to
   their static defaults via the visited-class guard; the raced and
   cube legs are exercised by the server test suite instead. *)
let static_routes trace =
  let dispatch = Some { Server.policy = None; trace; admission = false } in
  [
    ("direct", { base_config with dispatch });
    ("simplify", { base_config with mode = Server.Simplify; dispatch });
  ]

(* Every repetition lands in the trace — [reps] genuine completions
   per (route, instance), so the regression sees each route's wall
   spread instead of a single noisy sample. *)
let generate_trace path =
  let tl = Dispatch.Tracelog.open_file path in
  List.iter
    (fun (route, config) ->
      with_engine config (fun e ->
          List.iter
            (fun (name, f) ->
              let v, s = solve_best e f in
              Printf.printf "  trace %-9s %-17s %-7s %.3fs\n%!" route name v s)
            train_suite))
    (static_routes (Some tl));
  Dispatch.Tracelog.close tl;
  if Dispatch.Tracelog.dropped tl > 0 then failwith "trace dropped entries";
  Dispatch.Tracelog.entries_written tl

(* --- phase 3: held-out eval, static vs dispatch --------------------- *)

type row = {
  name : string;
  verdict : string;
  static_s : float;
  dispatch_s : float;
}

let run_eval policy =
  let dispatch_cfg =
    { base_config with
      dispatch =
        Some { Server.policy = Some policy; trace = None; admission = false }
    }
  in
  with_engine base_config (fun e_static ->
      with_engine dispatch_cfg (fun e_dispatch ->
          let rows =
            List.map
              (fun (name, f) ->
                let verdict, static_s, dispatch_s =
                  solve_pair e_static e_dispatch f
                in
                { name; verdict; static_s; dispatch_s })
              eval_suite
          in
          (rows, Server.stats e_dispatch)))

let measure_inference policy =
  let feats =
    List.map (fun (_, f) -> Dispatch.Features.of_formula f) eval_suite
  in
  let worst = ref 0.0 and total = ref 0.0 and n = ref 0 in
  for _ = 1 to 200 do
    List.iter
      (fun x ->
        let t0 = Sat.Wall.now () in
        ignore (Sys.opaque_identity (Dispatch.Policy.decide policy x));
        let dt = (Sat.Wall.now () -. t0) *. 1000.0 in
        if dt > !worst then worst := dt;
        total := !total +. dt;
        incr n)
      feats
  done;
  (!total /. float_of_int !n, !worst)

let json_number json key =
  let needle = "\"" ^ key ^ "\": " in
  let n = String.length needle and len = String.length json in
  let rec find i =
    if i + n > len then None
    else if String.sub json i n = needle then Some (i + n)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < len
      && (match json.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub json i (!j - i))

let () =
  Printf.printf
    "dispatch bench: %d train + %d eval instances, %d workers\n%!"
    (List.length train_suite) (List.length eval_suite) workers;
  let trace_path = Filename.temp_file "dispatch_bench" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove trace_path with Sys_error _ -> ())
    (fun () ->
      let entries = generate_trace trace_path in
      Printf.printf "traced %d completions; training policy...\n%!" entries;
      let policy = Dispatch.Policy.create () in
      let loss =
        Dispatch.Policy.train ~epochs ~lr policy
          (Dispatch.Tracelog.read_file trace_path)
      in
      Printf.printf "trained %d epochs (final loss %.4f)\n%!" epochs loss;
      List.iter
        (fun (name, f) ->
          let d = Dispatch.Policy.decide policy (Dispatch.Features.of_formula f) in
          Printf.printf
            "  decide %-13s lanes=%d simplify=%b cube=%s predicted=%.1fms\n%!"
            name d.Dispatch.Policy.lanes d.Dispatch.Policy.simplify
            (match d.Dispatch.Policy.cube_trigger with
            | None -> "off"
            | Some c -> string_of_int c)
            d.Dispatch.Policy.predicted_ms)
        eval_suite;
      let rows, stats = run_eval policy in
      let eps = 1e-6 in
      let ratios =
        List.map (fun r -> max eps r.static_s /. max eps r.dispatch_s) rows
      in
      let ratio_geomean = geomean ratios in
      List.iter2
        (fun r ratio ->
          Printf.printf "  %-13s %-7s static=%.4fs dispatch=%.4fs  %.2fx\n"
            r.name r.verdict r.static_s r.dispatch_s ratio)
        rows ratios;
      Printf.printf "dispatch vs static (geomean): %.2fx\n%!" ratio_geomean;
      let infer_mean_ms, infer_max_ms = measure_inference policy in
      Printf.printf "inference: mean %.4f ms, max %.4f ms per decision\n%!"
        infer_mean_ms infer_max_ms;
      (* The ledger must reconcile on the dispatch engine: one decision
         per eval submit, each on exactly one leg. *)
      let open Server.Metrics in
      if
        stats.dispatch_decided
        <> stats.dispatch_direct + stats.dispatch_simplify
           + stats.dispatch_raced + stats.dispatch_rejected
        || stats.dispatch_decided <> reps * List.length eval_suite
      then failwith "dispatch ledger does not reconcile";
      match check_path with
      | None ->
        let oc = open_out json_path in
        Printf.fprintf oc
          "{\n\
          \  \"workers\": %d,\n\
          \  \"train_instances\": %d,\n\
          \  \"eval_instances\": %d,\n\
          \  \"trace_entries\": %d,\n\
          \  \"train_loss\": %.4f,\n\
          \  \"dispatch_speedup_geomean\": %.2f,\n\
          \  \"infer_mean_ms\": %.4f,\n\
          \  \"infer_max_ms\": %.4f,\n\
          \  \"per_instance\": [\n%s\n  ],\n\
          \  \"final_stats\": %s\n\
           }\n"
          workers (List.length train_suite) (List.length eval_suite) entries
          loss ratio_geomean infer_mean_ms infer_max_ms
          (String.concat ",\n"
             (List.map2
                (fun r ratio ->
                  Printf.sprintf
                    "    {\"name\": \"%s\", \"verdict\": \"%s\", \
                     \"static_seconds\": %.4f, \"dispatch_seconds\": %.4f, \
                     \"speedup\": %.2f}"
                    r.name r.verdict r.static_s r.dispatch_s ratio)
                rows ratios))
          (Server.Metrics.to_json stats);
        close_out oc;
        print_endline ("wrote " ^ json_path)
      | Some path ->
        let ic = open_in path in
        let json = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let committed key =
          match json_number json key with
          | Some v -> v
          | None -> failwith (key ^ " missing from " ^ path)
        in
        let base_ratio = committed "dispatch_speedup_geomean" in
        Printf.printf "committed: %.2fx geomean\nfresh:     %.2fx geomean\n%!"
          base_ratio ratio_geomean;
        (* Solve walls on shared CI machines swing hard run to run;
           gate on collapse, not on noise: steady-state inference must
           stay under 1 ms (the max is reported but not gated — a
           single GC pause can spike it), and the geomean may not fall
           below the 0.7x floor nor to less than half the committed
           figure. *)
        if infer_mean_ms > 1.0 then begin
          Printf.printf
            "dispatch_bench check FAILED: inference above 1 ms\n";
          exit 1
        end
        else if ratio_geomean < 0.7 then begin
          Printf.printf
            "dispatch_bench check FAILED: dispatch below the 0.7x floor\n";
          exit 1
        end
        else if ratio_geomean < base_ratio /. 2.0 then begin
          Printf.printf
            "dispatch_bench check FAILED: geomean collapsed vs committed\n";
          exit 1
        end
        else Printf.printf "dispatch_bench check passed\n%!")
