(* Benchmark harness: regenerates every table and data-bearing figure
   of the paper's evaluation (see DESIGN.md for the experiment index)
   and runs bechamel micro-benchmarks of the kernels behind each one.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- --table 3       # one table
     dune exec bench/main.exe -- --no-micro      # tables only
     dune exec bench/main.exe -- --scale 0.5 --timeout 60
     dune exec bench/main.exe -- --train-episodes 40   # RL columns
     dune exec bench/main.exe -- --ablations --table 0  # design-choice ablations *)

let arg_flag name = Array.exists (( = ) name) Sys.argv

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table / figure. *)

let micro_tests () =
  let open Bechamel in
  (* Shared inputs, prepared once. *)
  let miter = Workloads.Lec.generate ~seed:4242 ~num_pis:16 ~num_ands:300 () in
  let php = Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6 in
  let php_cnf2aig = Workloads.Satcomp.pigeonhole ~pigeons:6 ~holes:5 in
  let env_cfg = Eda4sat.Env.default_config in
  let agent = Rl.Dqn.create (Eda4sat.Trainer.dqn_config_for env_cfg) in
  let state = Array.make (Eda4sat.Env.state_dim env_cfg) 0.1 in
  let tts =
    Array.init 64 (fun i -> Aig.Tt.of_int 4 ((i * 2654435761) land 0xFFFF))
  in
  (* Parser inputs, serialized once: the php(8,7) CNF (~2.4k clauses)
     and the LEC miter as ASCII AIGER exercise the single-pass cursor
     parsers. *)
  let php_dimacs =
    Cnf.Dimacs.write_string (Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7)
  in
  let miter_aag = Aig.Aiger_io.write_string miter in
  [
    Test.make ~name:"table1-tseitin-encode"
      (Staged.stage (fun () -> ignore (Cnf.Tseitin.encode miter)));
    Test.make ~name:"table2-solver-php(7,6)"
      (Staged.stage (fun () -> ignore (Sat.Solver.solve php)));
    Test.make ~name:"table2-solver-php(7,6)-glucose"
      (Staged.stage (fun () ->
           ignore (Sat.Solver.solve ~restarts:`Glucose php)));
    Test.make ~name:"table3-resub-fraig"
      (Staged.stage (fun () -> ignore (Synth.Resub.run miter)));
    Test.make ~name:"table4-dqn-inference"
      (Staged.stage (fun () -> ignore (Rl.Dqn.q_values agent state)));
    Test.make ~name:"table5-lut-mapping"
      (Staged.stage (fun () ->
           ignore
             (Lutmap.Mapper.run ~config:Lutmap.Mapper.cost_customized_config
                miter)));
    Test.make ~name:"table6-cnf2aig"
      (Staged.stage (fun () -> ignore (Cnf.Cnf2aig.run php_cnf2aig)));
    Test.make ~name:"table7-cut-enumeration"
      (Staged.stage (fun () -> ignore (Aig.Cut.enumerate miter ~k:4 ~limit:8)));
    Test.make ~name:"figure2-rewrite"
      (Staged.stage (fun () -> ignore (Synth.Rewrite.run miter)));
    Test.make ~name:"figure2-balance"
      (Staged.stage (fun () -> ignore (Synth.Balance.run miter)));
    Test.make ~name:"figure4-branching-cost"
      (Staged.stage (fun () -> ignore (Array.map Lutmap.Cost.branching tts)));
    Test.make ~name:"parse-dimacs-php(8,7)"
      (Staged.stage (fun () -> ignore (Cnf.Dimacs.read_string php_dimacs)));
    Test.make ~name:"parse-aiger-ascii-miter"
      (Staged.stage (fun () -> ignore (Aig.Aiger_io.read_string miter_aag)));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "== Micro-benchmarks (bechamel, monotonic clock) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"kernels" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure per_test ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_test [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ ns ] ->
            if ns > 1e6 then Printf.printf "%-36s %10.3f ms/run\n" name (ns /. 1e6)
            else Printf.printf "%-36s %10.1f ns/run\n" name ns
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
        (List.sort compare rows))
    merged;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let scale = arg_value "--scale" float_of_string 1.0 in
  let timeout = arg_value "--timeout" float_of_string 120.0 in
  let table = arg_value "--table" (fun s -> Some (int_of_string s)) None in
  let figure = arg_value "--figure" (fun s -> Some (int_of_string s)) None in
  let episodes =
    arg_value "--train-episodes" (fun s -> Some (int_of_string s)) None
  in
  let ctx =
    {
      Experiments.Tables.default_ctx with
      Experiments.Tables.scale;
      limits =
        { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some timeout };
    }
  in
  let ctx =
    match episodes with
    | None -> ctx
    | Some n ->
      Printf.printf "training the RL agent for %d episodes...\n%!" n;
      { ctx with
        Experiments.Tables.agent =
          Some (Experiments.Tables.train_agent ~episodes:n ctx) }
  in
  (match (table, figure) with
   | Some n, _ ->
     let t =
       match n with
       | 1 -> Experiments.Tables.table1 ctx
       | 2 -> Experiments.Tables.table2 ctx
       | 3 -> Experiments.Tables.table3 ctx
       | 4 -> Experiments.Tables.table4 ctx
       | 5 -> Experiments.Tables.table5 ctx
       | 6 -> Experiments.Tables.table6 ctx
       | 7 -> Experiments.Tables.table7 ctx
       | _ -> failwith "tables are numbered 1..7"
     in
     print_string (Experiments.Table.render t)
   | None, Some n ->
     let t =
       match n with
       | 2 -> Experiments.Tables.figure2 ()
       | 4 -> Experiments.Tables.figure4 ()
       | _ -> failwith "data-bearing figures are 2 and 4"
     in
     print_string (Experiments.Table.render t)
   | None, None ->
     Printf.printf
       "Regenerating all tables and figures (scale %.2f, timeout %.0f s)\n\n%!"
       scale timeout;
     (match arg_value "--csv" Option.some None with
      | None -> print_string (Experiments.Tables.run_all ctx)
      | Some dir ->
        (* Write each table both to stdout and as CSV. *)
        (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
        let emit name t =
          print_string (Experiments.Table.render t);
          let oc = open_out (Filename.concat dir (name ^ ".csv")) in
          output_string oc (Experiments.Table.to_csv t);
          close_out oc
        in
        emit "table1" (Experiments.Tables.table1 ctx);
        emit "table2" (Experiments.Tables.table2 ctx);
        emit "table3" (Experiments.Tables.table3 ctx);
        emit "table4" (Experiments.Tables.table4 ctx);
        emit "table5" (Experiments.Tables.table5 ctx);
        emit "table6" (Experiments.Tables.table6 ctx);
        emit "table7" (Experiments.Tables.table7 ctx);
        emit "figure2" (Experiments.Tables.figure2 ());
        emit "figure4" (Experiments.Tables.figure4 ())));
  if arg_flag "--ablations" || (table = None && figure = None) then begin
    print_endline "";
    print_string (Experiments.Ablations.run_all ())
  end;
  if (not (arg_flag "--no-micro")) && table = None && figure = None then
    run_micro ()
