(* Warm-start resume + zero-copy ingest harness.

     dune exec bench/warm_bench.exe
     dune exec bench/warm_bench.exe -- --workers 4 --scale 0.5
     dune exec bench/warm_bench.exe -- --check BENCH_warm.json

   Two measurements, one for each half of the warm-path work:

   1. Warm-vs-cold resume.  Each php/LEC instance is solved cold
      through the engine, its verdict is then dropped with
      [forget_verdict] — the warm snapshot survives — and the
      identical formula is resubmitted.  The second run misses the
      result cache, takes a warm hit, and resumes from the snapshot's
      learnt clauses, phases and activity order instead of restarting.
      Both runs are full solves through the same engine, so the ratio
      of their solve walls is purely the value of the seeded state.
      Reported as a per-instance table and the geometric-mean speedup.

   2. Parse throughput.  A large random-3SAT DIMACS file is read with
      the legacy path (read the bytes into a string, then
      [Dimacs.read_string]) and with the zero-copy path
      ([Dimacs.read_flat_file]: [Unix.map_file] + cursor parse into a
      flat CSR store, no intermediate clause lists).  Reported as MB/s
      each, best of [--iters] runs, with a canonical-fingerprint
      equality check to prove both parses read the same formula.

   Results go to BENCH_warm.json ([--json PATH] redirects);
   [--check PATH] re-measures and exits 1 if the warm speedup fell
   below the 1.5x floor, the parse speedup fell below 2x, or either
   regressed more than 10% below the committed numbers — the CI soft
   gate. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let workers = arg_value "--workers" int_of_string 2
let scale = arg_value "--scale" float_of_string 1.0
let iters = arg_value "--iters" int_of_string 3
let check_path = arg_value "--check" Option.some None
let json_path = arg_value "--json" Fun.id "BENCH_warm.json"
let dim n = max 4 (int_of_float (float_of_int n *. scale))

let suite =
  [
    ("php(7,6)", Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6);
    ("php(8,7)", Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
    ("lec-miter-5", Workloads.Suites.miter_cnf ~seed:5 ~num_ands:(dim 300));
    ("lec-miter-11", Workloads.Suites.miter_cnf ~seed:11 ~num_ands:(dim 300));
    ("parity-miter", Workloads.Suites.parity_miter_cnf ~num_bits:(dim 16));
  ]

let verdict_name = function
  | Server.Sat _ -> "SAT"
  | Server.Unsat -> "UNSAT"
  | Server.Timeout -> "TIMEOUT"
  | Server.Failed _ -> "FAILED"

let ok = function
  | Ok v -> v
  | Error r -> failwith ("rejected: " ^ r)

(* Cold solve, forget the verdict (the snapshot stays), resume warm.
   Sequential on purpose: each pair shares a worker, so the two solve
   walls are directly comparable. *)
let run_warm_pairs engine =
  List.map
    (fun (name, f) ->
      let cold = ok (Server.solve engine f) in
      if cold.Server.source <> Server.Solved then
        failwith (name ^ ": cold run was not a fresh solve");
      Server.forget_verdict engine (Cnf.Fingerprint.of_formula f);
      let warm = ok (Server.solve engine f) in
      if warm.Server.source <> Server.Solved then
        failwith (name ^ ": warm run answered from the cache");
      if verdict_name warm.Server.verdict <> verdict_name cold.Server.verdict
      then
        failwith
          (Printf.sprintf "%s: warm verdict %s != cold %s" name
             (verdict_name warm.Server.verdict)
             (verdict_name cold.Server.verdict));
      (name, verdict_name cold.Server.verdict, cold.Server.solve_wall,
       warm.Server.solve_wall))
    suite

let geomean = function
  | [] -> 1.0
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
      /. float_of_int (List.length xs))

(* --- parse throughput ------------------------------------------------ *)

let parse_corpus () =
  Workloads.Satcomp.random_ksat ~seed:7 ~num_vars:(dim 60000)
    ~num_clauses:(dim 240000) ~k:3

let best_of n f =
  let rec go i best =
    if i >= n then best
    else begin
      let t0 = Sat.Wall.now () in
      let r = f () in
      let dt = Sat.Wall.now () -. t0 in
      ignore (Sys.opaque_identity r);
      go (i + 1) (min best dt)
    end
  in
  go 0 infinity

let measure_parse () =
  let f = parse_corpus () in
  let path = Filename.temp_file "warm_bench" ".cnf" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Cnf.Dimacs.write_file f path;
      let bytes = (Unix.stat path).Unix.st_size in
      let mb = float_of_int bytes /. (1024.0 *. 1024.0) in
      let legacy_read () =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Cnf.Dimacs.read_string s
      in
      let legacy_s = best_of iters legacy_read in
      let flat_s = best_of iters (fun () -> Cnf.Dimacs.read_flat_file path) in
      (* Both paths must have read the very same canonical formula. *)
      let fp_legacy = Cnf.Fingerprint.of_formula (legacy_read ()) in
      let fp_flat = Cnf.Fingerprint.of_flat (Cnf.Dimacs.read_flat_file path) in
      if not (Cnf.Fingerprint.equal fp_legacy fp_flat) then
        failwith "parse mismatch: flat fingerprint != legacy fingerprint";
      (mb, mb /. legacy_s, mb /. flat_s))

let json_number json key =
  let needle = "\"" ^ key ^ "\": " in
  let n = String.length needle and len = String.length json in
  let rec find i =
    if i + n > len then None
    else if String.sub json i n = needle then Some (i + n)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < len
      && (match json.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub json i (!j - i))

let () =
  Printf.printf "warm bench: %d instances, %d workers\n%!" (List.length suite)
    workers;
  let config =
    {
      Server.workers;
      queue_capacity = 64;
      cache_capacity = 64;
      warm_capacity = 64;
      mode = Server.Direct;
      limits = Sat.Solver.no_limits;
      default_deadline = None;
      session_capacity = 8;
      session_ttl = None;
      cube = None;
      dispatch = None;
    }
  in
  let engine = Server.create ~config () in
  let pairs = run_warm_pairs engine in
  let stats = Server.stats engine in
  Server.shutdown engine;
  let eps = 1e-6 in
  let speedups =
    List.map (fun (_, _, cold, warm) -> max eps cold /. max eps warm) pairs
  in
  let warm_speedup = geomean speedups in
  List.iter2
    (fun (name, verdict, cold, warm) su ->
      Printf.printf "  %-14s %-7s cold=%.4fs warm=%.4fs  %.1fx\n" name verdict
        cold warm su)
    pairs speedups;
  Printf.printf "warm resume speedup (geomean): %.2fx\n%!" warm_speedup;
  let parse_mb, legacy_mb_s, flat_mb_s = measure_parse () in
  let parse_speedup = flat_mb_s /. legacy_mb_s in
  Printf.printf
    "parse: %.1f MB corpus  legacy %.1f MB/s  flat/mmap %.1f MB/s  %.1fx\n%!"
    parse_mb legacy_mb_s flat_mb_s parse_speedup;
  match check_path with
  | None ->
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"workers\": %d,\n\
      \  \"instances\": %d,\n\
      \  \"warm_speedup_geomean\": %.2f,\n\
      \  \"per_instance\": [\n%s\n  ],\n\
      \  \"parse_corpus_mb\": %.1f,\n\
      \  \"parse_legacy_mb_per_s\": %.1f,\n\
      \  \"parse_flat_mb_per_s\": %.1f,\n\
      \  \"parse_speedup\": %.2f,\n\
      \  \"final_stats\": %s\n\
       }\n"
      workers (List.length suite) warm_speedup
      (String.concat ",\n"
         (List.map2
            (fun (name, verdict, cold, warm) su ->
              Printf.sprintf
                "    {\"name\": \"%s\", \"verdict\": \"%s\", \
                 \"cold_solve_seconds\": %.4f, \"warm_solve_seconds\": \
                 %.4f, \"speedup\": %.1f}"
                name verdict cold warm su)
            pairs speedups))
      parse_mb legacy_mb_s flat_mb_s parse_speedup
      (Server.Metrics.to_json stats);
    close_out oc;
    print_endline ("wrote " ^ json_path)
  | Some path ->
    let ic = open_in path in
    let json = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let committed key =
      match json_number json key with
      | Some v -> v
      | None -> failwith (key ^ " missing from " ^ path)
    in
    let base_warm = committed "warm_speedup_geomean" in
    let base_parse = committed "parse_speedup" in
    Printf.printf
      "committed: %.2fx warm, %.2fx parse\nfresh:     %.2fx warm, %.2fx \
       parse\n%!"
      base_warm base_parse warm_speedup parse_speedup;
    (* A warm resume is sub-millisecond absolute, so its ratio swings
       by tens of percent run to run on shared machines: hold the
       design floors (warm >= 1.5x, parse >= 2x) and guard only
       against an order-of-magnitude collapse of the warm figure —
       the parse ratio divides two multi-millisecond walls, so it
       keeps the usual 10% band. *)
    if warm_speedup < 1.5 then begin
      Printf.printf "warm_bench check FAILED: warm speedup below 1.5x floor\n";
      exit 1
    end
    else if parse_speedup < 2.0 then begin
      Printf.printf "warm_bench check FAILED: parse speedup below 2x floor\n";
      exit 1
    end
    else if warm_speedup < base_warm /. 3.0 then begin
      Printf.printf
        "warm_bench check FAILED: warm speedup collapsed vs committed\n";
      exit 1
    end
    else if
      parse_speedup < 0.9 *. base_parse && parse_speedup < base_parse -. 1.0
    then begin
      Printf.printf
        "warm_bench check FAILED: parse speedup regressed >10%% vs committed\n";
      exit 1
    end
    else Printf.printf "warm_bench check passed\n%!"
