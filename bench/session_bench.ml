(* Incremental-session speedup harness.

     dune exec bench/session_bench.exe
     dune exec bench/session_bench.exe -- --workers 4 --queries 8
     dune exec bench/session_bench.exe -- --check BENCH_session.json

   The SAT-sweeping workload persistent sessions exist for: a suite of
   php/LEC instances, each probed with a handful of related queries
   (the same base formula under different assumption literals — the
   shape of consecutive CEC miter checks).  The cold pass submits
   every query as an independent one-shot job: the base clauses are
   re-loaded and re-solved from scratch each time, and a per-query
   unit clause keeps every fingerprint distinct so neither the result
   cache nor in-flight dedup can help.  The incremental pass opens one
   session per instance, adds the base once and answers the same
   queries with ASSUME+SOLVE against the persistent solver — clauses
   learned by the first query (and a base refutation, once found) are
   reused by all the rest.  Both passes run through the same engine
   and worker pool, so the reported speedup is purely the value of
   keeping solver state alive across queries.

   Results go to BENCH_session.json ([--json PATH] redirects);
   [--check PATH] re-measures and exits 1 if the speedup fell below
   the 5x floor or more than 10% below the committed number — the CI
   soft gate. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let workers = arg_value "--workers" int_of_string 2
let scale = arg_value "--scale" float_of_string 1.0
let queries = arg_value "--queries" int_of_string 8
let check_path = arg_value "--check" Option.some None
let json_path = arg_value "--json" Fun.id "BENCH_session.json"
let dim n = max 4 (int_of_float (float_of_int n *. scale))

let suite =
  [
    ("php(7,6)", Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6);
    ("php(8,7)", Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
    ("lec-miter-5", Workloads.Suites.miter_cnf ~seed:5 ~num_ands:(dim 300));
    ("lec-miter-11", Workloads.Suites.miter_cnf ~seed:11 ~num_ands:(dim 300));
    ("parity-miter", Workloads.Suites.parity_miter_cnf ~num_bits:(dim 16));
  ]

(* Query 0 checks the instance outright — the CEC pattern, where the
   first query refutes the miter and every later probe of the same
   sweep rides on the established refutation and the learned clauses.
   Queries 1.. re-check under a fresh selector variable each (the
   consecutive near-identical miter probes of a sweep: the delta is
   cosmetic, but it changes the fingerprint, so neither the result
   cache nor dedup can shortcut the cold pass — every cold job pays
   the full base solve). *)
let query_lit f q = f.Cnf.Formula.num_vars + q

let cold_formula f q =
  if q = 0 then f
  else
    Cnf.Formula.create ~num_vars:(f.Cnf.Formula.num_vars + q)
      (Array.to_list f.Cnf.Formula.clauses @ [ [| query_lit f q |] ])

let verdict_of_outcome = function
  | Server.Session.Ok_done -> "OK"
  | Server.Session.Sat _ -> "SAT"
  | Server.Session.Unsat _ -> "UNSAT"
  | Server.Session.Timeout -> "TIMEOUT"
  | Server.Session.Evicted -> "EVICTED"
  | Server.Session.Failed _ -> "FAILED"

let verdict_name = function
  | Server.Sat _ -> "SAT"
  | Server.Unsat -> "UNSAT"
  | Server.Timeout -> "TIMEOUT"
  | Server.Failed _ -> "FAILED"

let ok = function
  | Ok v -> v
  | Error r -> failwith ("rejected: " ^ r)

(* One one-shot job per (instance, query); submit everything, then
   await — the worker pool runs the batch at full width. *)
let run_cold engine =
  let t0 = Sat.Wall.now () in
  let tickets =
    List.concat_map
      (fun (name, f) ->
        List.init queries (fun q ->
            (name, ok (Server.submit engine (cold_formula f q)))))
      suite
  in
  let answers =
    List.map (fun (name, t) -> (name, Server.await engine t)) tickets
  in
  (Sat.Wall.now () -. t0, answers)

(* One session per instance; the base is added once, then each query
   is an ASSUME+SOLVE pair.  All ops across all sessions are enqueued
   up front — per-session FIFOs keep each session's ops ordered while
   the fair scheduler interleaves sessions across the same worker
   pool the cold pass used. *)
let run_incremental engine =
  let t0 = Sat.Wall.now () in
  let opened =
    List.map
      (fun (name, f) ->
        let sid = ok (Server.open_session engine) in
        ignore
          (ok
             (Server.session_submit engine sid
                (Server.Session.Add (Array.to_list f.Cnf.Formula.clauses))));
        let solves =
          List.init queries (fun q ->
              if q > 0 then
                ignore
                  (ok
                     (Server.session_submit engine sid
                        (Server.Session.Assume [| query_lit f q |])));
              ok (Server.submit_session_solve engine sid))
        in
        (name, sid, solves))
      suite
  in
  let answers =
    List.concat_map
      (fun (name, sid, solves) ->
        let res =
          List.map
            (fun t -> (name, Server.session_await engine t))
            solves
        in
        ignore (ok (Server.close_session engine sid));
        res)
      opened
  in
  (Sat.Wall.now () -. t0, answers)

let json_number json key =
  let needle = "\"" ^ key ^ "\": " in
  let n = String.length needle and len = String.length json in
  let rec find i =
    if i + n > len then None
    else if String.sub json i n = needle then Some (i + n)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < len
      && (match json.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub json i (!j - i))

let () =
  let total = List.length suite * queries in
  Printf.printf
    "session bench: %d instances x %d queries = %d solves, %d workers\n%!"
    (List.length suite) queries total workers;
  let config =
    {
      Server.workers;
      queue_capacity = max 64 (2 * total);
      cache_capacity = 2 * total;
      warm_capacity = 0;  (* isolate incremental-vs-cold, no warm resume *)
      mode = Server.Direct;
      limits = Sat.Solver.no_limits;
      default_deadline = None;
      session_capacity = max 8 (List.length suite);
      session_ttl = None;
      cube = None;
      dispatch = None;
    }
  in
  let engine = Server.create ~config () in
  let cold_wall, cold_answers = run_cold engine in
  let incr_wall, incr_answers = run_incremental engine in
  let stats = Server.stats engine in
  Server.shutdown engine;
  (* The probes are assumption literals over an UNSAT base, so both
     passes must agree query by query. *)
  List.iter2
    (fun (cn, (ca : Server.answer)) (sn, (sa : Server.Session.answer)) ->
      let cv = verdict_name ca.Server.verdict
      and sv = verdict_of_outcome sa.Server.Session.outcome in
      if cn <> sn || cv <> sv then
        failwith
          (Printf.sprintf "verdict mismatch: cold %s=%s vs session %s=%s" cn
             cv sn sv))
    cold_answers incr_answers;
  let speedup = cold_wall /. incr_wall in
  Printf.printf "cold pass:        %.3fs (%d one-shot jobs)\n" cold_wall total;
  Printf.printf "incremental pass: %.3fs (%d session solves)\n" incr_wall
    total;
  Printf.printf "speedup: %.1fx\n%!" speedup;
  let per_instance =
    List.map
      (fun (name, _) ->
        let wall which =
          List.fold_left
            (fun acc (n, w) -> if n = name then acc +. w else acc)
            0.0 which
        in
        let cold =
          wall
            (List.map
               (fun (n, (a : Server.answer)) -> (n, a.Server.solve_wall))
               cold_answers)
        and incr =
          wall
            (List.map
               (fun (n, (a : Server.Session.answer)) -> (n, a.Server.Session.solve_wall))
               incr_answers)
        in
        (name, cold, incr))
      suite
  in
  List.iter
    (fun (name, cold, incr) ->
      Printf.printf "  %-14s cold=%.3fs incremental=%.3fs\n" name cold incr)
    per_instance;
  match check_path with
  | None ->
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"workers\": %d,\n\
      \  \"instances\": %d,\n\
      \  \"queries_per_instance\": %d,\n\
      \  \"total_solves\": %d,\n\
      \  \"cold_wall_seconds\": %.3f,\n\
      \  \"incremental_wall_seconds\": %.4f,\n\
      \  \"incremental_speedup\": %.1f,\n\
      \  \"per_instance\": [\n%s\n  ],\n\
      \  \"final_stats\": %s\n\
       }\n"
      workers (List.length suite) queries total cold_wall incr_wall speedup
      (String.concat ",\n"
         (List.map
            (fun (name, cold, incr) ->
              Printf.sprintf
                "    {\"name\": \"%s\", \"cold_solve_seconds\": %.3f, \
                 \"incremental_solve_seconds\": %.4f}"
                name cold incr)
            per_instance))
      (Server.Metrics.to_json stats);
    close_out oc;
    print_endline ("wrote " ^ json_path)
  | Some path ->
    let ic = open_in path in
    let json = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let committed key =
      match json_number json key with
      | Some v -> v
      | None -> failwith (key ^ " missing from " ^ path)
    in
    let base_su = committed "incremental_speedup" in
    Printf.printf "committed: %.1fx incremental speedup\nfresh:     %.1fx\n%!"
      base_su speedup;
    (* The incremental pass is a few milliseconds absolute, so the
       ratio is noisy on shared runners: hold the 5x floor the design
       promises, and the usual 10% band against the committed figure
       only down to that floor. *)
    if speedup < 5.0 then begin
      Printf.printf "session_bench check FAILED: speedup below the 5x floor\n";
      exit 1
    end
    else if speedup < 0.9 *. base_su && speedup < base_su -. 1.0 then begin
      Printf.printf
        "session_bench check FAILED: speedup regressed >10%% vs committed\n";
      exit 1
    end
    else Printf.printf "session_bench check passed\n%!"
