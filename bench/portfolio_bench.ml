(* Portfolio speedup harness.

   Races the 4-lane portfolio against each of its lanes run alone, on
   a suite chosen so that no single configuration is good everywhere:
   pigeonhole and LEC miter CNFs become easy after circuit recovery +
   synthesis + LUT re-encoding (the EDA lanes win; direct CDCL grinds
   or times out), while the large satisfiable random-3-SAT solves
   directly in milliseconds but costs the EDA lanes tens of seconds of
   transformation.  A fixed lane therefore pays a large penalty
   somewhere, and the race's worst case is a constant factor over the
   per-instance winner — which is the whole argument for the
   portfolio, and it holds even on one core where the domains merely
   timeslice.

     dune exec bench/portfolio_bench.exe                # full suite
     dune exec bench/portfolio_bench.exe -- --timeout 30
     dune exec bench/portfolio_bench.exe -- --scale 0.5 # smaller suite

   Results (per-instance walls, per-lane totals, portfolio total) are
   written to BENCH_portfolio.json. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let timeout = arg_value "--timeout" float_of_string 60.0
let scale = arg_value "--scale" float_of_string 1.0
let jobs = 4

let limits =
  { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some timeout }

let dim n = max 4 (int_of_float (float_of_int n *. scale))

let suite =
  [
    ( "lec-miter",
      Eda4sat.Instance.of_cnf ~name:"lec-miter"
        (Workloads.Suites.miter_cnf ~seed:7 ~num_ands:(dim 900)) );
    ( "php(10,9)",
      Eda4sat.Instance.of_cnf ~name:"php(10,9)"
        (Workloads.Satcomp.pigeonhole ~pigeons:10 ~holes:9) );
    ( "php(11,10)",
      Eda4sat.Instance.of_cnf ~name:"php(11,10)"
        (Workloads.Satcomp.pigeonhole ~pigeons:11 ~holes:10) );
    ( "r3sat-easy",
      Eda4sat.Instance.of_cnf ~name:"r3sat-easy"
        (Workloads.Satcomp.random_ksat ~seed:3 ~num_vars:(dim 6000)
           ~num_clauses:(dim 18000) ~k:3) );
    ( "parity-miter",
      Eda4sat.Instance.of_cnf ~name:"parity-miter"
        (Workloads.Suites.parity_miter_cnf ~num_bits:(dim 24)) );
  ]

let result_name = function
  | Sat.Solver.Sat _ -> "SAT"
  | Sat.Solver.Unsat -> "UNSAT"
  | Sat.Solver.Unknown -> "UNKNOWN"

(* A lane that times out (or dies) is censored at the budget. *)
let lane_wall (outcome : Portfolio.Runner.outcome) =
  match outcome.Portfolio.Runner.result with
  | Sat.Solver.Sat _ | Sat.Solver.Unsat -> outcome.Portfolio.Runner.wall
  | Sat.Solver.Unknown -> timeout

let () =
  let cfg = Eda4sat.Pipeline.ours () in
  let lane_names = ref [] in
  let rows =
    List.map
      (fun (name, inst) ->
        let f = Eda4sat.Instance.direct_formula inst in
        let lanes = Eda4sat.Pipeline.portfolio_strategies ~jobs cfg inst in
        if !lane_names = [] then
          lane_names := List.map (fun s -> s.Portfolio.Strategy.name) lanes;
        Printf.printf "== %s (%d vars, %d clauses)\n%!" name
          f.Cnf.Formula.num_vars (Cnf.Formula.num_clauses f);
        let singles =
          List.map
            (fun lane ->
              let o = Portfolio.Runner.run ~jobs:1 ~limits [ lane ] f in
              let w = lane_wall o in
              Printf.printf "   %-24s %-8s %7.3fs\n%!"
                lane.Portfolio.Strategy.name
                (result_name o.Portfolio.Runner.result)
                w;
              (lane.Portfolio.Strategy.name, w, o.Portfolio.Runner.result))
            lanes
        in
        let o = Portfolio.Runner.run ~jobs ~limits lanes f in
        let pw = lane_wall o in
        Printf.printf "   %-24s %-8s %7.3fs (winner: %s)\n%!"
          (Printf.sprintf "portfolio(jobs=%d)" jobs)
          (result_name o.Portfolio.Runner.result)
          pw
          (match o.Portfolio.Runner.winner with
           | Some w -> (List.nth lanes w).Portfolio.Strategy.name
           | None -> "none");
        (name, singles, pw, o))
      suite
  in
  let totals =
    List.mapi
      (fun i lane ->
        ( lane,
          List.fold_left
            (fun acc (_, singles, _, _) ->
              let _, w, _ = List.nth singles i in
              acc +. w)
            0.0 rows ))
      !lane_names
  in
  let portfolio_total =
    List.fold_left (fun acc (_, _, pw, _) -> acc +. pw) 0.0 rows
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) totals in
  let best_name, best_total = List.hd sorted in
  let median_total =
    let n = List.length sorted in
    snd (List.nth sorted (n / 2))
  in
  Printf.printf "\n== Totals over the suite (timeout %.0fs)\n" timeout;
  List.iter (fun (l, t) -> Printf.printf "   %-24s %8.3fs\n" l t) totals;
  Printf.printf "   %-24s %8.3fs\n" "portfolio(jobs=4)" portfolio_total;
  Printf.printf "   best single: %s (%.3fs); median single: %.3fs\n" best_name
    best_total median_total;
  Printf.printf "   portfolio vs best single: %.2fx; vs median: %.2fx\n"
    (best_total /. portfolio_total)
    (median_total /. portfolio_total);
  (* --- JSON ---------------------------------------------------------- *)
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"jobs\": %d,\n" jobs;
  bpf "  \"timeout_seconds\": %g,\n" timeout;
  bpf "  \"scale\": %g,\n" scale;
  bpf "  \"lanes\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") !lane_names));
  bpf "  \"instances\": [\n";
  List.iteri
    (fun i (name, singles, pw, (o : Portfolio.Runner.outcome)) ->
      bpf "    {\n";
      bpf "      \"name\": %S,\n" name;
      bpf "      \"single_walls\": {%s},\n"
        (String.concat ", "
           (List.map (fun (l, w, _) -> Printf.sprintf "%S: %.3f" l w) singles));
      bpf "      \"portfolio_wall\": %.3f,\n" pw;
      bpf "      \"portfolio_result\": %S,\n"
        (result_name o.Portfolio.Runner.result);
      bpf "      \"winner\": %s,\n"
        (match o.Portfolio.Runner.winner with
         | Some w -> Printf.sprintf "%S" (List.nth !lane_names w)
         | None -> "null");
      bpf "      \"shared\": { \"published\": %d, \"delivered\": %d, \
           \"dropped\": %d }\n"
        o.Portfolio.Runner.shared_published o.Portfolio.Runner.shared_delivered
        o.Portfolio.Runner.shared_dropped;
      bpf "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  bpf "  ],\n";
  bpf "  \"single_totals\": {%s},\n"
    (String.concat ", "
       (List.map (fun (l, t) -> Printf.sprintf "%S: %.3f" l t) totals));
  bpf "  \"best_single\": { \"lane\": %S, \"total\": %.3f },\n" best_name
    best_total;
  bpf "  \"median_single_total\": %.3f,\n" median_total;
  bpf "  \"portfolio_total\": %.3f,\n" portfolio_total;
  bpf "  \"speedup_vs_best_single\": %.3f,\n" (best_total /. portfolio_total);
  bpf "  \"speedup_vs_median_single\": %.3f\n" (median_total /. portfolio_total);
  bpf "}\n";
  let oc = open_out "BENCH_portfolio.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_endline "wrote BENCH_portfolio.json"
