(* Cube-and-conquer harness.

     dune exec bench/cube_bench.exe
     dune exec bench/cube_bench.exe -- --jobs 4 --cubes 16
     dune exec bench/cube_bench.exe -- --check BENCH_cube.json

   Each hard UNSAT instance is solved twice on the same worker
   budget:

   1. Race: the diversified portfolio ([Runner.run] over
      [Strategy.default_pool ~jobs]) — the strongest pre-cube
      configuration, every lane attacking the whole formula.

   2. Cube: [Cuber.solve ~cubes ~jobs] — lookahead split into cubes,
      conquered in parallel with work stealing, each refutation
      stitched into one shared DRAT recorder closed by the empty
      clause.  The stitched proof is replayed with [Proof.check] on
      the checkable sizes, so the reported speedup is for a {e
      certified} refutation.

   Results go to BENCH_cube.json ([--json PATH] redirects);
   [--check PATH] re-measures and exits 1 if a verdict flipped, the
   stitched proof stopped checking, or the cube speedup collapsed
   versus the committed figure — the CI soft gate. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let jobs = arg_value "--jobs" int_of_string 4
let cubes = arg_value "--cubes" int_of_string 16
let probe_limit = arg_value "--probe-limit" int_of_string 32
let timeout = arg_value "--timeout" float_of_string 120.0
let check_path = arg_value "--check" Option.some None
let json_path = arg_value "--json" Fun.id "BENCH_cube.json"
let limits = { Sat.Solver.no_limits with Sat.Solver.max_seconds = Some timeout }

let php n = Workloads.Satcomp.pigeonhole ~pigeons:n ~holes:(n - 1)

(* Hard UNSAT slice; [check_proof] marks the sizes where replaying the
   stitched DRAT stream is affordable (Proof.check is an unoptimized
   reference checker, quadratic-ish in the clause count).  The larger
   rows still assert [proof_sealed] — the stream reached the empty
   clause — they just skip the replay. *)
let suite =
  [
    ("php(8,7)", php 8, true);
    ("php(9,8)", php 9, false);
    ("php(10,9)", php 10, false);
  ]

let result_name = function
  | Sat.Solver.Sat _ -> "SAT"
  | Sat.Solver.Unsat -> "UNSAT"
  | Sat.Solver.Unknown -> "UNKNOWN"

let geomean = function
  | [] -> 1.0
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
      /. float_of_int (List.length xs))

type row = {
  name : string;
  verdict : string;
  race_s : float;
  cube_s : float;
  steals : int;
  proof_ok : bool option;  (* None: proof not replayed at this size *)
}

let run_suite () =
  List.map
    (fun (name, f, check_proof) ->
      let race =
        Portfolio.Runner.run ~jobs ~limits
          (Portfolio.Strategy.default_pool ~jobs)
          f
      in
      let proof = Sat.Proof.create () in
      let cr =
        Portfolio.Cuber.solve ~cubes ~probe_limit ~jobs ~limits ~proof f
      in
      (* A timed-out race (Unknown) may legitimately lose to a decisive
         cube answer; only two decisive, different verdicts are a bug. *)
      (match (cr.Portfolio.Cuber.result, race.Portfolio.Runner.result) with
       | Sat.Solver.Unknown, _ | _, Sat.Solver.Unknown -> ()
       | a, b when result_name a <> result_name b ->
         failwith
           (Printf.sprintf "%s: cube verdict %s != race %s" name
              (result_name a) (result_name b))
       | _ -> ());
      (match cr.Portfolio.Cuber.result with
       | Sat.Solver.Unsat when not cr.Portfolio.Cuber.proof_sealed ->
         failwith (name ^ ": UNSAT without a sealed stitched proof")
       | _ -> ());
      let proof_ok =
        if check_proof && cr.Portfolio.Cuber.result = Sat.Solver.Unsat then
          Some (Sat.Proof.check f proof)
        else None
      in
      (match proof_ok with
       | Some false -> failwith (name ^ ": stitched proof failed Proof.check")
       | _ -> ());
      {
        name;
        verdict = result_name cr.Portfolio.Cuber.result;
        race_s = race.Portfolio.Runner.wall;
        cube_s = cr.Portfolio.Cuber.wall;
        steals = cr.Portfolio.Cuber.steals;
        proof_ok;
      })
    suite

let json_number json key =
  let needle = "\"" ^ key ^ "\": " in
  let n = String.length needle and len = String.length json in
  let rec find i =
    if i + n > len then None
    else if String.sub json i n = needle then Some (i + n)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < len
      && (match json.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub json i (!j - i))

let () =
  Printf.printf "cube bench: %d instances, jobs=%d cubes=%d probe-limit=%d\n%!"
    (List.length suite) jobs cubes probe_limit;
  let rows = run_suite () in
  let eps = 1e-6 in
  let speedups =
    List.map (fun r -> max eps r.race_s /. max eps r.cube_s) rows
  in
  let cube_speedup = geomean speedups in
  List.iter2
    (fun r su ->
      Printf.printf "  %-11s %-6s race=%.3fs cube=%.3fs steals=%d %s %.2fx\n"
        r.name r.verdict r.race_s r.cube_s r.steals
        (match r.proof_ok with
         | Some true -> "proof=checked"
         | Some false -> "proof=FAILED"
         | None -> "proof=sealed")
        su)
    rows speedups;
  Printf.printf "cube speedup vs portfolio race (geomean): %.2fx\n%!"
    cube_speedup;
  match check_path with
  | None ->
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n\
      \  \"jobs\": %d,\n\
      \  \"cubes\": %d,\n\
      \  \"probe_limit\": %d,\n\
      \  \"cube_speedup_geomean\": %.2f,\n\
      \  \"per_instance\": [\n%s\n  ]\n\
       }\n"
      jobs cubes probe_limit cube_speedup
      (String.concat ",\n"
         (List.map2
            (fun r su ->
              Printf.sprintf
                "    {\"name\": \"%s\", \"verdict\": \"%s\", \
                 \"race_seconds\": %.4f, \"cube_seconds\": %.4f, \
                 \"steals\": %d, \"proof_checked\": %s, \"speedup\": %.2f}"
                r.name r.verdict r.race_s r.cube_s r.steals
                (match r.proof_ok with
                 | Some true -> "true"
                 | Some false -> "false"
                 | None -> "null")
                su)
            rows speedups))
    ;
    close_out oc;
    print_endline ("wrote " ^ json_path)
  | Some path ->
    let ic = open_in path in
    let json = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let base =
      match json_number json "cube_speedup_geomean" with
      | Some v -> v
      | None -> failwith ("cube_speedup_geomean missing from " ^ path)
    in
    Printf.printf "committed: %.2fx cube\nfresh:     %.2fx cube\n%!" base
      cube_speedup;
    (* Wall ratios on shared CI machines swing; hold a floor (the cube
       path must at least match the race it replaces) and guard
       against collapse versus the committed figure. *)
    if cube_speedup < 1.0 then begin
      Printf.printf
        "cube_bench check FAILED: cubing slower than the portfolio race\n";
      exit 1
    end
    else if cube_speedup < base /. 3.0 then begin
      Printf.printf
        "cube_bench check FAILED: cube speedup collapsed vs committed\n";
      exit 1
    end
    else Printf.printf "cube_bench check passed\n%!"
