(* Solve-service throughput harness.

     dune exec bench/server_bench.exe
     dune exec bench/server_bench.exe -- --workers 8 --scale 0.5
     dune exec bench/server_bench.exe -- --check BENCH_server.json

   Pushes a duplicated php/LEC suite through the concurrent server
   twice: a cold pass (every unique formula solved once, the
   duplicated copies — clause-shuffled so only the canonical
   fingerprint matches them — answered by in-flight dedup or the
   cache) and a warm pass of the identical batch (all cache hits).
   Reports jobs/sec on the cold pass and the cold/warm wall ratio as
   the cache-hit speedup, plus the engine's own metrics snapshot.

   Results go to BENCH_server.json ([--json PATH] redirects them);
   [--check PATH] re-measures and
   exits 1 if throughput fell more than 10% below the committed
   number or the cache speedup collapsed — the CI soft gate. *)

let arg_value name conv default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then conv Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let workers = arg_value "--workers" int_of_string 4
let scale = arg_value "--scale" float_of_string 1.0
let copies = arg_value "--copies" int_of_string 3
let check_path = arg_value "--check" Option.some None
let json_path = arg_value "--json" Fun.id "BENCH_server.json"
let dim n = max 4 (int_of_float (float_of_int n *. scale))

let suite =
  [
    ("php(7,6)", Workloads.Satcomp.pigeonhole ~pigeons:7 ~holes:6);
    ("php(8,7)", Workloads.Satcomp.pigeonhole ~pigeons:8 ~holes:7);
    ("php(9,8)", Workloads.Satcomp.pigeonhole ~pigeons:9 ~holes:8);
    ("lec-miter-5", Workloads.Suites.miter_cnf ~seed:5 ~num_ands:(dim 300));
    ("lec-miter-11", Workloads.Suites.miter_cnf ~seed:11 ~num_ands:(dim 300));
    ("parity-miter", Workloads.Suites.parity_miter_cnf ~num_bits:(dim 16));
    ( "r3sat-2",
      Workloads.Satcomp.random_ksat ~seed:2 ~num_vars:(dim 1200)
        ~num_clauses:(dim 3600) ~k:3 );
    ( "r3sat-4",
      Workloads.Satcomp.random_ksat ~seed:4 ~num_vars:(dim 1200)
        ~num_clauses:(dim 3600) ~k:3 );
  ]

(* A clause-order permutation: a different DIMACS file, the same
   canonical fingerprint — the duplicate detector has to earn it. *)
let shuffle seed f =
  let rng = Aig.Rng.create (97 * seed) in
  let cls = Array.copy f.Cnf.Formula.clauses in
  for i = Array.length cls - 1 downto 1 do
    let j = Aig.Rng.int rng (i + 1) in
    let tmp = cls.(i) in
    cls.(i) <- cls.(j);
    cls.(j) <- tmp
  done;
  Cnf.Formula.create ~num_vars:f.Cnf.Formula.num_vars (Array.to_list cls)

let jobs =
  List.concat_map
    (fun (name, f) ->
      List.init copies (fun c ->
          (Printf.sprintf "%s#%d" name c, if c = 0 then f else shuffle c f)))
    suite

let verdict_name = function
  | Server.Sat _ -> "SAT"
  | Server.Unsat -> "UNSAT"
  | Server.Timeout -> "TIMEOUT"
  | Server.Failed _ -> "FAILED"

let run_batch engine =
  let t0 = Sat.Wall.now () in
  let tickets =
    List.map
      (fun (name, f) ->
        match Server.submit engine f with
        | Ok t -> (name, t)
        | Error r -> failwith (name ^ " rejected: " ^ r))
      jobs
  in
  let answers =
    List.map (fun (name, t) -> (name, Server.await engine t)) tickets
  in
  (Sat.Wall.now () -. t0, answers)

let json_number json key =
  let needle = "\"" ^ key ^ "\": " in
  let n = String.length needle and len = String.length json in
  let rec find i =
    if i + n > len then None
    else if String.sub json i n = needle then Some (i + n)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < len
      && (match json.[!j] with '0' .. '9' | '.' | '-' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub json i (!j - i))

let () =
  let total_jobs = List.length jobs in
  Printf.printf
    "server bench: %d unique instances x %d copies = %d jobs, %d workers\n%!"
    (List.length suite) copies total_jobs workers;
  let config =
    {
      Server.workers;
      queue_capacity = max 64 (2 * total_jobs);
      cache_capacity = 2 * total_jobs;
      (* warm starts off: this bench isolates the verdict cache, and a
         warm resume would blur the cold-vs-repeat contrast *)
      warm_capacity = 0;
      mode = Server.Direct;
      limits = Sat.Solver.no_limits;
      default_deadline = None;
      session_capacity = 64;
      session_ttl = None;
      cube = None;
      dispatch = None;
    }
  in
  let engine = Server.create ~config () in
  let cold_wall, cold_answers = run_batch engine in
  let s_cold = Server.stats engine in
  let warm_wall, _ = run_batch engine in
  let s_final = Server.stats engine in
  let throughput = float_of_int total_jobs /. cold_wall in
  let speedup = cold_wall /. warm_wall in
  Printf.printf
    "cold pass: %.3fs (%.1f jobs/sec; %d solved, %d deduped/cached)\n"
    cold_wall throughput s_cold.Server.Metrics.submitted
    (s_cold.Server.Metrics.cache_hits + s_cold.Server.Metrics.dedup_joins);
  Printf.printf "warm pass: %.3fs (cache-hit speedup %.1fx)\n%!" warm_wall
    speedup;
  List.iter
    (fun (name, (a : Server.answer)) ->
      if Filename.check_suffix name "#0" then
        Printf.printf "  %-14s %-7s solve=%.3fs\n" name
          (verdict_name a.Server.verdict)
          a.Server.solve_wall)
    cold_answers;
  Server.shutdown engine;
  (match check_path with
   | None ->
     let oc = open_out json_path in
     Printf.fprintf oc
       "{\n\
       \  \"workers\": %d,\n\
       \  \"unique_instances\": %d,\n\
       \  \"copies\": %d,\n\
       \  \"total_jobs\": %d,\n\
       \  \"cold_wall_seconds\": %.3f,\n\
       \  \"warm_wall_seconds\": %.4f,\n\
       \  \"throughput_jobs_per_sec\": %.2f,\n\
       \  \"cache_hit_speedup\": %.1f,\n\
       \  \"cold_pass\": { \"solved\": %d, \"cache_hits\": %d, \
        \"dedup_joins\": %d },\n\
       \  \"instances\": [\n%s\n  ],\n\
       \  \"final_stats\": %s\n\
        }\n"
       workers (List.length suite) copies total_jobs cold_wall warm_wall
       throughput speedup s_cold.Server.Metrics.submitted
       s_cold.Server.Metrics.cache_hits s_cold.Server.Metrics.dedup_joins
       (String.concat ",\n"
          (List.filter_map
             (fun (name, (a : Server.answer)) ->
               if Filename.check_suffix name "#0" then
                 Some
                   (Printf.sprintf
                      "    {\"name\": \"%s\", \"verdict\": \"%s\", \
                       \"solve_wall\": %.3f}"
                      (Filename.chop_suffix name "#0")
                      (verdict_name a.Server.verdict)
                      a.Server.solve_wall)
               else None)
             cold_answers))
       (Server.Metrics.to_json s_final);
     close_out oc;
     print_endline ("wrote " ^ json_path)
   | Some path ->
     let ic = open_in path in
     let json = really_input_string ic (in_channel_length ic) in
     close_in ic;
     let committed key =
       match json_number json key with
       | Some v -> v
       | None -> failwith (key ^ " missing from " ^ path)
     in
     let base_tp = committed "throughput_jobs_per_sec" in
     let base_su = committed "cache_hit_speedup" in
     Printf.printf
       "committed: %.2f jobs/sec, %.1fx cache speedup\n\
        fresh:     %.2f jobs/sec, %.1fx cache speedup\n%!"
       base_tp base_su throughput speedup;
     (* The warm pass is sub-millisecond absolute time, so its ratio
        swings wildly on shared CI runners: demand only that caching
        still pays for itself by an order of magnitude less than the
        committed figure, alongside the usual 10% throughput band. *)
     if throughput < 0.9 *. base_tp then begin
       Printf.printf "server_bench check FAILED: throughput regressed >10%%\n";
       exit 1
     end
     else if speedup < base_su /. 10.0 || speedup < 2.0 then begin
       Printf.printf "server_bench check FAILED: cache speedup collapsed\n";
       exit 1
     end
     else Printf.printf "server_bench check passed\n%!")
